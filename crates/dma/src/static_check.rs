//! Static DMA race analysis over a kernel IR.
//!
//! The paper cites Donaldson, Kroening and Rümmer (TACAS 2010), who
//! verify scratch-pad DMA code by instrumenting programs with assertions
//! modelling the memory flow controller and proving them with
//! k-induction. This module implements the same *idea* at reproduction
//! scale: accelerator kernels are expressed in a small IR of DMA
//! operations, local accesses and bounded loops, and the analyzer
//! symbolically executes the IR — unrolling loops twice, which suffices
//! to expose cross-iteration conflicts in the single- and double-buffered
//! idioms games use — reporting every synchronisation bug it can prove
//! without running the program.
//!
//! The `offload-lang` compiler lowers offload blocks to this IR to check
//! generated data-movement code; `bench` E11 compares this analyzer with
//! the dynamic [`crate::RaceChecker`] on a corpus of seeded bugs.

use std::fmt;

use memspace::{AccessMode, AddrRange, ModeSet};

use crate::engine::{DmaDirection, DmaRequest, Tag, TagMask};
use crate::race::{AccessKind, RaceChecker, RaceKind, RaceMode};

/// One operation in a DMA kernel.
#[derive(Clone, Debug)]
pub enum KernelOp {
    /// Issue a `get` of `remote` into `local` under `tag`.
    Get {
        /// Local-store destination range.
        local: AddrRange,
        /// Remote source range (must be the same length).
        remote: AddrRange,
        /// Tag group (0..=31).
        tag: u8,
    },
    /// Issue a `put` of `local` out to `remote` under `tag`.
    Put {
        /// Local-store source range.
        local: AddrRange,
        /// Remote destination range (must be the same length).
        remote: AddrRange,
        /// Tag group (0..=31).
        tag: u8,
    },
    /// Wait for all commands whose tag is in `mask`.
    Wait {
        /// Bitmask over tags, as in [`TagMask`].
        mask: u32,
    },
    /// A direct core access to local-store bytes.
    Access {
        /// The accessed range.
        range: AddrRange,
        /// Load or store.
        kind: AccessKind,
    },
    /// A loop whose body executes a statically unknown number of times
    /// (at least once, as in every per-frame game task loop).
    Loop {
        /// Operations in the loop body.
        body: Vec<KernelOp>,
    },
}

/// A named DMA kernel, the unit of static analysis.
#[derive(Clone, Debug, Default)]
pub struct DmaKernel {
    /// Kernel name, used in findings.
    pub name: String,
    /// Operation sequence.
    pub ops: Vec<KernelOp>,
    /// Declared access modes for the kernel's remote working set. Empty
    /// means undeclared (the permissive legacy contract); non-empty
    /// makes the analyzer reject every `Put` whose remote range is not
    /// fully inside a declared `write`/`update` range.
    pub modes: ModeSet,
}

impl DmaKernel {
    /// Creates an empty kernel with the given name.
    pub fn new(name: impl Into<String>) -> DmaKernel {
        DmaKernel {
            name: name.into(),
            ops: Vec::new(),
            modes: ModeSet::new(),
        }
    }

    /// Attaches the offload's access-mode declarations (builder style).
    #[must_use]
    pub fn with_modes(mut self, modes: ModeSet) -> DmaKernel {
        self.modes = modes;
        self
    }
}

/// The class of a static finding.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StaticFindingKind {
    /// A core access may observe or corrupt in-flight data.
    UnsyncedAccess,
    /// Two possibly-concurrent transfers overlap with at least one write.
    TransferOverlap,
    /// A transfer can still be in flight when the kernel exits (its
    /// buffer may be reused by the next task).
    PendingAtExit,
    /// A `put` targets a remote range the kernel's access-mode
    /// declarations never licensed for writing (only raised for
    /// kernels with a non-empty [`ModeSet`]).
    UndeclaredWrite,
}

impl fmt::Display for StaticFindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticFindingKind::UnsyncedAccess => write!(f, "unsynchronised local access"),
            StaticFindingKind::TransferOverlap => write!(f, "overlapping in-flight transfers"),
            StaticFindingKind::PendingAtExit => write!(f, "transfer pending at kernel exit"),
            StaticFindingKind::UndeclaredWrite => write!(f, "undeclared write"),
        }
    }
}

/// A single static finding, locating the operations involved.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct StaticFinding {
    /// Classification.
    pub kind: StaticFindingKind,
    /// Kernel the finding is in.
    pub kernel: String,
    /// Human-readable location, e.g. `"op 3 (loop iteration 2) vs op 1"`.
    pub location: String,
    /// Explanation of the conflict.
    pub detail: String,
}

impl fmt::Display for StaticFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at {}: {}",
            self.kernel, self.kind, self.location, self.detail
        )
    }
}

struct Analyzer {
    checker: RaceChecker,
    /// Maps synthetic transfer ids to (location, tag).
    issued: Vec<(String, u8)>,
    findings: Vec<StaticFinding>,
    seen: std::collections::HashSet<String>,
    kernel: String,
    modes: ModeSet,
}

/// Strips unrolling-iteration markers so the same source-level conflict
/// reported from different unrolled copies deduplicates to one finding.
fn strip_iterations(text: &str) -> String {
    text.replace(" (iteration 1)", "")
        .replace(" (iteration 2)", "")
}

impl Analyzer {
    fn location_of(&self, id: u64) -> &str {
        &self.issued[(id - 1) as usize].0
    }

    fn drain_checker(&mut self, here: &str) {
        for report in self.checker.take_reports() {
            let finding = match report.kind {
                RaceKind::TransferOverlap {
                    first,
                    second,
                    in_local_store,
                } => StaticFinding {
                    kind: StaticFindingKind::TransferOverlap,
                    kernel: self.kernel.clone(),
                    location: format!(
                        "{} vs {}",
                        self.location_of(second),
                        self.location_of(first)
                    ),
                    detail: format!(
                        "both transfers may be in flight and overlap on {} in {}",
                        report.range,
                        if in_local_store {
                            "the local store"
                        } else {
                            "remote memory"
                        }
                    ),
                },
                RaceKind::UnsyncedLocalAccess {
                    transfer,
                    access,
                    direction,
                } => StaticFinding {
                    kind: StaticFindingKind::UnsyncedAccess,
                    kernel: self.kernel.clone(),
                    location: format!("{} vs {}", here, self.location_of(transfer)),
                    detail: format!(
                        "core {access} of {} while {direction} issued at {} may still be in flight; insert a wait on its tag first",
                        report.range,
                        self.location_of(transfer),
                    ),
                },
                RaceKind::UndeclaredWrite { read_only } => StaticFinding {
                    kind: StaticFindingKind::UndeclaredWrite,
                    kernel: self.kernel.clone(),
                    location: here.to_string(),
                    detail: format!(
                        "put of {} {}",
                        report.range,
                        if read_only {
                            "targets a range declared read-only"
                        } else {
                            "is outside every declared range"
                        }
                    ),
                },
            };
            self.push_finding(finding);
        }
    }

    fn push_finding(&mut self, finding: StaticFinding) {
        let key = format!(
            "{:?}|{}|{}",
            finding.kind,
            strip_iterations(&finding.location),
            strip_iterations(&finding.detail)
        );
        if self.seen.insert(key) {
            self.findings.push(finding);
        }
    }

    fn walk(&mut self, ops: &[KernelOp], prefix: &str, pending_tags: &mut Vec<(u64, u8)>) {
        for (index, op) in ops.iter().enumerate() {
            let here = if prefix.is_empty() {
                format!("op {index}")
            } else {
                format!("{prefix} op {index}")
            };
            match op {
                KernelOp::Get { local, remote, tag } | KernelOp::Put { local, remote, tag } => {
                    let direction = if matches!(op, KernelOp::Get { .. }) {
                        DmaDirection::Get
                    } else {
                        DmaDirection::Put
                    };
                    // A mode-annotated kernel may only put into ranges it
                    // declared writable; everything else is rejected here,
                    // before the program ever runs.
                    if direction == DmaDirection::Put && !self.modes.is_empty() {
                        match self.modes.mode_for(remote.start(), remote.len()) {
                            Some(AccessMode::Write | AccessMode::Update) => {}
                            declared => {
                                self.checker.note_undeclared_write(
                                    *remote,
                                    declared == Some(AccessMode::Read),
                                    0,
                                );
                                self.drain_checker(&here);
                            }
                        }
                    }
                    let id = self.issued.len() as u64 + 1;
                    self.issued.push((here.clone(), *tag));
                    let request = DmaRequest {
                        local: local.start(),
                        remote: remote.start(),
                        size: local.len(),
                        tag: Tag::new(tag % Tag::COUNT).expect("tag reduced into range"),
                        direction,
                    };
                    self.checker.note_issue(id, &request, 0);
                    pending_tags.push((id, *tag));
                    self.drain_checker(&here);
                }
                KernelOp::Wait { mask } => {
                    let mask = TagMask::from_bits(*mask);
                    pending_tags.retain(|(id, tag)| {
                        let done = Tag::new(*tag % Tag::COUNT)
                            .map(|t| mask.contains(t))
                            .unwrap_or(false);
                        if done {
                            self.checker.note_retire(*id);
                        }
                        !done
                    });
                }
                KernelOp::Access { range, kind } => {
                    self.checker.note_access(*range, *kind, 0);
                    self.drain_checker(&here);
                }
                KernelOp::Loop { body } => {
                    // Unroll twice: iteration 2 re-issues against anything
                    // iteration 1 left pending, exposing cross-iteration
                    // races (the double-buffering bug class).
                    self.walk(body, &format!("{here} (iteration 1)"), pending_tags);
                    self.walk(body, &format!("{here} (iteration 2)"), pending_tags);
                }
            }
        }
    }
}

/// Statically analyzes a kernel, returning every finding.
///
/// The analysis is sound for the IR's semantics (no false negatives for
/// the modelled bug classes within two loop iterations) and may report
/// conflicts on paths a cleverer analysis could rule out — the usual
/// trade the paper's setting accepts in exchange for not needing a
/// triggering input.
///
/// # Example
///
/// ```
/// use dma::{analyze_kernel, AccessKind, DmaKernel, KernelOp, StaticFindingKind};
/// use memspace::{Addr, AddrRange, SpaceId};
///
/// let ls = |o, l| AddrRange::new(Addr::new(SpaceId::local_store(0), o), l).unwrap();
/// let main = |o, l| AddrRange::new(Addr::new(SpaceId::MAIN, o), l).unwrap();
///
/// let mut kernel = DmaKernel::new("missing_wait");
/// kernel.ops = vec![
///     KernelOp::Get { local: ls(0x100, 64), remote: main(0x1000, 64), tag: 1 },
///     // BUG: the access happens before the wait.
///     KernelOp::Access { range: ls(0x100, 4), kind: AccessKind::Read },
///     KernelOp::Wait { mask: 1 << 1 },
/// ];
/// let findings = analyze_kernel(&kernel);
/// assert_eq!(findings.len(), 1);
/// assert_eq!(findings[0].kind, StaticFindingKind::UnsyncedAccess);
/// ```
pub fn analyze_kernel(kernel: &DmaKernel) -> Vec<StaticFinding> {
    let mut analyzer = Analyzer {
        checker: RaceChecker::new(RaceMode::Record),
        issued: Vec::new(),
        findings: Vec::new(),
        seen: std::collections::HashSet::new(),
        kernel: kernel.name.clone(),
        modes: kernel.modes.clone(),
    };
    let mut pending = Vec::new();
    analyzer.walk(&kernel.ops, "", &mut pending);
    for (id, _) in pending {
        let finding = StaticFinding {
            kind: StaticFindingKind::PendingAtExit,
            kernel: kernel.name.clone(),
            location: analyzer.location_of(id).to_string(),
            detail: "transfer is never waited on before the kernel exits".to_string(),
        };
        analyzer.push_finding(finding);
    }
    analyzer.findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use memspace::{Addr, SpaceId};

    fn ls(offset: u32, len: u32) -> AddrRange {
        AddrRange::new(Addr::new(SpaceId::local_store(0), offset), len).unwrap()
    }

    fn main_r(offset: u32, len: u32) -> AddrRange {
        AddrRange::new(Addr::new(SpaceId::MAIN, offset), len).unwrap()
    }

    fn get(local: AddrRange, remote: AddrRange, tag: u8) -> KernelOp {
        KernelOp::Get { local, remote, tag }
    }

    fn put(local: AddrRange, remote: AddrRange, tag: u8) -> KernelOp {
        KernelOp::Put { local, remote, tag }
    }

    fn wait(mask: u32) -> KernelOp {
        KernelOp::Wait { mask }
    }

    fn read(range: AddrRange) -> KernelOp {
        KernelOp::Access {
            range,
            kind: AccessKind::Read,
        }
    }

    fn write(range: AddrRange) -> KernelOp {
        KernelOp::Access {
            range,
            kind: AccessKind::Write,
        }
    }

    fn kinds(findings: &[StaticFinding]) -> Vec<StaticFindingKind> {
        findings.iter().map(|f| f.kind).collect()
    }

    #[test]
    fn figure1_pattern_is_clean() {
        // The paper's Figure 1: two gets, wait, compute, two puts, wait.
        let mut k = DmaKernel::new("figure1");
        k.ops = vec![
            get(ls(0x100, 64), main_r(0x1000, 64), 1),
            get(ls(0x200, 64), main_r(0x2000, 64), 1),
            wait(1 << 1),
            read(ls(0x100, 64)),
            read(ls(0x200, 64)),
            write(ls(0x100, 64)),
            put(ls(0x100, 64), main_r(0x1000, 64), 1),
            put(ls(0x200, 64), main_r(0x2000, 64), 1),
            wait(1 << 1),
        ];
        assert!(analyze_kernel(&k).is_empty());
    }

    #[test]
    fn missing_wait_before_access_is_found() {
        let mut k = DmaKernel::new("missing_wait");
        k.ops = vec![
            get(ls(0x100, 64), main_r(0x1000, 64), 1),
            read(ls(0x110, 8)),
        ];
        let findings = analyze_kernel(&k);
        assert!(kinds(&findings).contains(&StaticFindingKind::UnsyncedAccess));
        assert!(findings[0].detail.contains("wait"));
    }

    #[test]
    fn wait_on_wrong_tag_is_found() {
        let mut k = DmaKernel::new("wrong_tag");
        k.ops = vec![
            get(ls(0x100, 64), main_r(0x1000, 64), 1),
            wait(1 << 2), // waits tag 2, but the get used tag 1
            read(ls(0x100, 8)),
        ];
        let findings = analyze_kernel(&k);
        assert!(kinds(&findings).contains(&StaticFindingKind::UnsyncedAccess));
    }

    #[test]
    fn pending_at_exit_is_found() {
        let mut k = DmaKernel::new("fire_and_forget_put");
        k.ops = vec![put(ls(0x100, 64), main_r(0x1000, 64), 3)];
        let findings = analyze_kernel(&k);
        assert_eq!(kinds(&findings), vec![StaticFindingKind::PendingAtExit]);
    }

    #[test]
    fn overlapping_gets_same_buffer_found() {
        let mut k = DmaKernel::new("buffer_reuse");
        k.ops = vec![
            get(ls(0x100, 64), main_r(0x1000, 64), 1),
            get(ls(0x100, 64), main_r(0x2000, 64), 2),
            wait((1 << 1) | (1 << 2)),
            read(ls(0x100, 64)),
        ];
        let findings = analyze_kernel(&k);
        assert!(kinds(&findings).contains(&StaticFindingKind::TransferOverlap));
    }

    #[test]
    fn single_buffered_loop_without_wait_is_found() {
        // for each chunk: get into the same buffer, process — but the
        // wait is missing; iteration 2's get overlaps iteration 1's.
        let mut k = DmaKernel::new("loop_missing_wait");
        k.ops = vec![KernelOp::Loop {
            body: vec![
                get(ls(0x100, 64), main_r(0x1000, 64), 1),
                read(ls(0x100, 64)),
            ],
        }];
        let findings = analyze_kernel(&k);
        assert!(kinds(&findings).contains(&StaticFindingKind::UnsyncedAccess));
    }

    #[test]
    fn correct_single_buffered_loop_is_clean_except_exit() {
        let mut k = DmaKernel::new("loop_ok");
        k.ops = vec![KernelOp::Loop {
            body: vec![
                get(ls(0x100, 64), main_r(0x1000, 64), 1),
                wait(1 << 1),
                read(ls(0x100, 64)),
            ],
        }];
        assert!(analyze_kernel(&k).is_empty());
    }

    #[test]
    fn double_buffered_loop_with_correct_waits_is_clean() {
        // The canonical double-buffer: prefetch buffer B while computing
        // on A, waiting on each buffer's tag before touching it.
        let mut k = DmaKernel::new("double_buffer_ok");
        k.ops = vec![
            get(ls(0x100, 64), main_r(0x1000, 64), 0),
            KernelOp::Loop {
                body: vec![
                    get(ls(0x200, 64), main_r(0x2000, 64), 1),
                    wait(1 << 0),
                    read(ls(0x100, 64)),
                    get(ls(0x100, 64), main_r(0x3000, 64), 0),
                    wait(1 << 1),
                    read(ls(0x200, 64)),
                ],
            },
            wait((1 << 0) | (1 << 1)),
        ];
        assert!(analyze_kernel(&k).is_empty());
    }

    #[test]
    fn double_buffered_loop_with_swapped_tags_is_found() {
        // Same shape, but the waits name the wrong buffers' tags.
        let mut k = DmaKernel::new("double_buffer_swapped");
        k.ops = vec![
            get(ls(0x100, 64), main_r(0x1000, 64), 0),
            KernelOp::Loop {
                body: vec![
                    get(ls(0x200, 64), main_r(0x2000, 64), 1),
                    wait(1 << 1), // BUG: should wait tag 0 before reading A
                    read(ls(0x100, 64)),
                    get(ls(0x100, 64), main_r(0x3000, 64), 0),
                    wait(1 << 0), // BUG: should wait tag 1 before reading B
                    read(ls(0x200, 64)),
                ],
            },
            wait(0b11),
        ];
        let findings = analyze_kernel(&k);
        assert!(kinds(&findings).contains(&StaticFindingKind::UnsyncedAccess));
    }

    #[test]
    fn findings_are_deduplicated_across_unrolling() {
        let mut k = DmaKernel::new("dedup");
        k.ops = vec![KernelOp::Loop {
            body: vec![
                get(ls(0x100, 64), main_r(0x1000, 64), 1),
                read(ls(0x100, 64)),
                wait(1 << 1),
            ],
        }];
        let findings = analyze_kernel(&k);
        // One finding per distinct (location pair), not an explosion.
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn undeclared_put_is_rejected_under_modes() {
        use memspace::AccessMode;
        // Declares main[0x1000..0x1040] read-only and nothing else, then
        // puts both into the read-only range and outside every range.
        let modes = ModeSet::new().with(Addr::new(SpaceId::MAIN, 0x1000), 64, AccessMode::Read);
        let mut k = DmaKernel::new("mode_violations").with_modes(modes);
        k.ops = vec![
            put(ls(0x100, 64), main_r(0x1000, 64), 1),
            put(ls(0x200, 64), main_r(0x8000, 64), 1),
            wait(1 << 1),
        ];
        let findings = analyze_kernel(&k);
        let undeclared: Vec<_> = findings
            .iter()
            .filter(|f| f.kind == StaticFindingKind::UndeclaredWrite)
            .collect();
        assert_eq!(undeclared.len(), 2, "{findings:?}");
        assert!(undeclared[0].detail.contains("read-only"), "{findings:?}");
        assert!(
            undeclared[1]
                .detail
                .contains("outside every declared range"),
            "{findings:?}"
        );
    }

    #[test]
    fn declared_puts_pass_and_undeclared_kernels_stay_permissive() {
        use memspace::AccessMode;
        let modes = ModeSet::new().with(Addr::new(SpaceId::MAIN, 0x1000), 64, AccessMode::Write);
        let mut k = DmaKernel::new("mode_ok").with_modes(modes);
        k.ops = vec![put(ls(0x100, 64), main_r(0x1000, 64), 1), wait(1 << 1)];
        assert!(analyze_kernel(&k).is_empty());

        // The same put with no declarations at all is the legacy
        // contract: nothing to reject.
        let mut legacy = DmaKernel::new("legacy");
        legacy.ops = vec![put(ls(0x100, 64), main_r(0x9000, 64), 1), wait(1 << 1)];
        assert!(analyze_kernel(&legacy).is_empty());
    }

    #[test]
    fn finding_display_is_informative() {
        let mut k = DmaKernel::new("show");
        k.ops = vec![
            get(ls(0x100, 64), main_r(0x1000, 64), 1),
            read(ls(0x100, 8)),
            wait(1 << 1),
        ];
        let findings = analyze_kernel(&k);
        let text = findings[0].to_string();
        assert!(text.contains("show"));
        assert!(text.contains("op 1"));
        assert!(text.contains("unsynchronised"));
    }
}
