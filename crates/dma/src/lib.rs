//! Tagged, non-blocking DMA for the Offload reproduction.
//!
//! Figure 1 of the paper shows the programming model this crate
//! implements: `dma_get`/`dma_put` commands carry a *tag*, proceed
//! asynchronously, and `dma_wait(tag)` blocks until every command issued
//! under that tag has completed. The paper stresses that "correct
//! synchronization of DMA operations is essential for software
//! correctness, but difficult to achieve in practice", citing both a
//! static analysis tool (Donaldson et al., TACAS 2010) and a dynamic one
//! (IBM's Cell Race Check Library). This crate provides all three pieces:
//!
//! - [`DmaEngine`]: a per-accelerator MFC-like command queue with a
//!   latency/bandwidth/alignment timing model ([`DmaTiming`]),
//! - [`race::RaceChecker`]: dynamic detection of unsynchronised local
//!   accesses and overlapping in-flight transfers,
//! - [`static_check`]: a static analyzer over a small DMA-kernel IR that
//!   finds the same bug classes without executing.
//!
//! Time is represented as plain `u64` cycle counts supplied by the
//! caller; the `simcell` crate owns the clocks.
//!
//! # Example
//!
//! ```
//! use dma::{Tag, TagMask};
//!
//! let tag = Tag::new(3).expect("0..=31 are valid tags");
//! let mask = tag.mask();
//! assert!(mask.contains(tag));
//! assert_eq!(mask.bits(), 1 << 3);
//! assert!(TagMask::ALL.contains(tag));
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod race;
pub mod static_check;

pub use engine::{
    DmaDirection, DmaEngine, DmaError, DmaRequest, DmaStats, DmaTiming, Tag, TagMask,
};
pub use race::{AccessKind, RaceChecker, RaceKind, RaceMode, RaceReport};
pub use static_check::{analyze_kernel, DmaKernel, KernelOp, StaticFinding, StaticFindingKind};

/// Maximum size of a single DMA transfer, in bytes (the Cell MFC limit).
///
/// Larger logical transfers must be split into multiple commands; the
/// accessor classes in `offload-rt` do this automatically.
pub const MAX_TRANSFER: u32 = 16 * 1024;
