//! A tiny, zero-dependency, seeded pseudo-random number generator.
//!
//! The workspace's benchmarks need *identical worlds on every run, on
//! every machine, with no network access at build time*. This crate
//! replaces the external `rand` dependency with SplitMix64 (Steele,
//! Lea & Flood, OOPSLA 2014's `java.util.SplittableRandom` finalizer),
//! which is tiny, fast, passes BigCrush when used as a 64-bit stream,
//! and — most importantly here — is fully specified by this file, so
//! generated scenarios can never drift under a dependency upgrade.
//!
//! Not cryptographic. Not for statistics. For deterministic workloads.
//!
//! # Example
//!
//! ```
//! use xrng::Rng;
//!
//! let mut a = Rng::new(42);
//! let mut b = Rng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let f = a.range_f32(-1.0, 1.0);
//! assert!((-1.0..1.0).contains(&f));
//! ```

#![warn(missing_docs)]

/// A seeded SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64: an additive Weyl sequence fed through a 3-stage
        // xor-shift-multiply finalizer.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32 random bits (the high half of [`Rng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below_u32(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "below_u32 needs a non-zero bound");
        // Lemire's multiply-shift reduction without the rejection step:
        // bias is at most bound/2^64, irrelevant for workload generation
        // and (unlike rejection) branch-free and obviously deterministic.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u32
    }

    /// A uniform value in `[lo, hi)` (half-open, like `gen_range`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "range_u32 needs lo < hi, got {lo}..{hi}");
        lo + self.below_u32(hi - lo)
    }

    /// A uniform value in `[0, bound]` (inclusive), for Fisher–Yates.
    pub fn below_inclusive_usize(&mut self, bound: usize) -> usize {
        ((u128::from(self.next_u64()) * (bound as u128 + 1)) >> 64) as usize
    }

    /// A uniform float in `[0, 1)` with 24 bits of precision.
    pub fn unit_f32(&mut self) -> f32 {
        // 24 explicit mantissa bits -> every value is exactly
        // representable and strictly below 1.0.
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or not finite.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "range_f32 needs lo < hi, got {lo}..{hi}");
        assert!((hi - lo).is_finite(), "range_f32 span must be finite");
        lo + self.unit_f32() * (hi - lo)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below_inclusive_usize(i);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn known_answer_vector() {
        // First three outputs of reference SplitMix64 with seed 0, as
        // produced by the original public-domain C implementation. Pins
        // the exact algorithm so generated worlds can never silently
        // change under a refactor.
        let mut rng = Rng::new(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(rng.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(99);
        for _ in 0..10_000 {
            let v = rng.range_u32(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.range_f32(-2.5, 7.5);
            assert!((-2.5..7.5).contains(&f));
            let u = rng.unit_f32();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_inclusive_reaches_both_ends() {
        let mut rng = Rng::new(5);
        let mut saw_zero = false;
        let mut saw_top = false;
        for _ in 0..1000 {
            match rng.below_inclusive_usize(3) {
                0 => saw_zero = true,
                3 => saw_top = true,
                1 | 2 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_zero && saw_top);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<u32>>(),
            "100 elements never shuffle to identity"
        );
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = Rng::new(3);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.below_u32(8) as usize] += 1;
        }
        for &count in &buckets {
            assert!(
                (800..1200).contains(&count),
                "bucket count {count} far from 1000"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn zero_bound_panics() {
        Rng::new(0).below_u32(0);
    }
}
