//! Hot-path microkernels behind the throughput suite.
//!
//! Each comparison pairs the *seed implementation strategy* — re-created
//! here as a standalone replica, byte-for-byte faithful to the patterns
//! the optimisation replaced — with the current hot path, driven by an
//! identical deterministic workload. Wall-clock ratios between the two
//! sides are therefore apples-to-apples. Every kernel returns a
//! checksum so the optimizer cannot delete the work and callers can
//! assert both sides computed the same thing.
//!
//! The comparisons mirror the hot paths the overhauls touched:
//!
//! 1. **DMA bookkeeping** — seed: one flat `Vec` of in-flight commands,
//!    waits retire by `retain` with a per-wait scratch `Vec` of ids;
//!    now: per-tag FIFO rings whose back entry *is* the group maximum.
//! 2. **Bulk byte transfer** — seed: `read_bytes(..)?.to_vec()` then
//!    `write_bytes` (one heap allocation per copy); now:
//!    [`memspace::copy_between`]'s direct slice-to-slice copy, and
//!    `read_pod_slice_into` refilling one caller-owned scratch vector.
//! 3. **VM call-path bookkeeping** — seed: arguments popped one by one
//!    into a freshly allocated reversed `Vec`, async offload handles in
//!    a `HashMap<u16, _>`; now: a stack split passes arguments as a
//!    borrowed slice and handles live in a flat slot vector.
//! 4. **VM operand representation** — seed: a 16-byte Rust enum per
//!    stack slot, discriminant-matched on every pop; now: a tagged
//!    machine word (type tag in the top bits), so a slot is 8 bytes
//!    and un/packing is a shift and a mask.

use std::collections::{HashMap, VecDeque};

use memspace::{copy_between, Addr, MemoryRegion, SpaceId, SpaceKind};

// ---------------------------------------------------------------------
// 1. DMA bookkeeping: flat Vec + retain vs per-tag rings.
// ---------------------------------------------------------------------

const TAG_COUNT: usize = 32;

#[derive(Clone, Copy)]
struct Cmd {
    id: u64,
    tag: u8,
    complete_at: u64,
}

/// Seed-style ledger: every in-flight command in one flat `Vec`.
struct VecLedger {
    inflight: Vec<Cmd>,
    checksum: u64,
}

impl VecLedger {
    fn new() -> VecLedger {
        VecLedger {
            inflight: Vec::new(),
            checksum: 0,
        }
    }

    fn issue(&mut self, cmd: Cmd) {
        self.inflight.push(cmd);
    }

    /// Replica of the seed `DmaEngine::wait`: scan-and-retain over the
    /// whole ledger, collecting retired ids into a scratch `Vec` (the
    /// seed fed them to the race checker one by one afterwards).
    fn wait(&mut self, mask: u32, now: u64) -> u64 {
        let mut resume = now;
        let mut retired = Vec::new();
        self.inflight.retain(|c| {
            if mask & (1u32 << c.tag) != 0 {
                resume = resume.max(c.complete_at);
                retired.push(c.id);
                false
            } else {
                true
            }
        });
        for id in retired {
            self.checksum = self.checksum.wrapping_add(id);
        }
        resume
    }
}

/// Current-style ledger: one FIFO ring per tag; completion times are
/// monotone within a tag, so the group max is the back of each ring.
struct RingLedger {
    queues: [VecDeque<Cmd>; TAG_COUNT],
    checksum: u64,
}

impl RingLedger {
    fn new() -> RingLedger {
        RingLedger {
            queues: std::array::from_fn(|_| VecDeque::new()),
            checksum: 0,
        }
    }

    fn issue(&mut self, cmd: Cmd) {
        self.queues[usize::from(cmd.tag)].push_back(cmd);
    }

    fn wait(&mut self, mask: u32, now: u64) -> u64 {
        let mut resume = now;
        let mut bits = mask;
        while bits != 0 {
            let raw = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let queue = &mut self.queues[raw];
            if let Some(last) = queue.back() {
                resume = resume.max(last.complete_at);
            }
            while let Some(cmd) = queue.pop_front() {
                self.checksum = self.checksum.wrapping_add(cmd.id);
            }
        }
        resume
    }
}

trait Ledger {
    fn issue(&mut self, cmd: Cmd);
    fn wait(&mut self, mask: u32, now: u64) -> u64;
    fn checksum(&self) -> u64;
}

impl Ledger for VecLedger {
    fn issue(&mut self, cmd: Cmd) {
        VecLedger::issue(self, cmd);
    }
    fn wait(&mut self, mask: u32, now: u64) -> u64 {
        VecLedger::wait(self, mask, now)
    }
    fn checksum(&self) -> u64 {
        self.checksum
    }
}

impl Ledger for RingLedger {
    fn issue(&mut self, cmd: Cmd) {
        RingLedger::issue(self, cmd);
    }
    fn wait(&mut self, mask: u32, now: u64) -> u64 {
        RingLedger::wait(self, mask, now)
    }
    fn checksum(&self) -> u64 {
        self.checksum
    }
}

/// The shared trace: `rounds` rounds, each issuing one command on each
/// of 8 tags and waiting on a single round-robin tag, so up to ~64
/// commands stay in flight — the steady state of a double-buffered
/// streaming loop with several tag groups live at once.
fn drive_ledger(rounds: u64, ledger: &mut impl Ledger) -> u64 {
    const LIVE_TAGS: u64 = 8;
    let mut id = 0u64;
    let mut now = 0u64;
    let mut acc = 0u64;
    for round in 0..rounds {
        for t in 0..LIVE_TAGS {
            now += 3;
            ledger.issue(Cmd {
                id,
                tag: t as u8,
                complete_at: now + 100,
            });
            id += 1;
        }
        let tag = (round % LIVE_TAGS) as u8;
        now = ledger.wait(1u32 << tag, now);
        acc = acc.wrapping_add(now);
    }
    // Drain everything, as a teardown wait-all would.
    now = ledger.wait(u32::MAX, now);
    acc.wrapping_add(now).wrapping_add(ledger.checksum())
}

/// Runs the trace against the seed-style flat-`Vec` ledger.
#[must_use]
pub fn dma_ledger_legacy(rounds: u64) -> u64 {
    drive_ledger(rounds, &mut VecLedger::new())
}

/// Runs the trace against the current-style per-tag-ring ledger.
#[must_use]
pub fn dma_ledger_rings(rounds: u64) -> u64 {
    drive_ledger(rounds, &mut RingLedger::new())
}

// ---------------------------------------------------------------------
// 2. Bulk byte transfer: to_vec-per-copy vs direct slice copy.
// ---------------------------------------------------------------------

/// A pair of memory regions plus a transfer size, reused across
/// iterations so the kernels time the copy, not region setup.
pub struct CopyRig {
    src: MemoryRegion,
    dst: MemoryRegion,
    src_addr: Addr,
    dst_addr: Addr,
    len: u32,
    scratch: Vec<u8>,
}

impl CopyRig {
    /// Builds a rig transferring `len` bytes per step.
    #[must_use]
    pub fn new(len: u32) -> CopyRig {
        let capacity = (len + 256).next_power_of_two().max(4096);
        let mut src = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, capacity);
        let dst = MemoryRegion::new(
            SpaceId::local_store(0),
            SpaceKind::LocalStore { accel: 0 },
            capacity,
        );
        let src_addr = Addr::new(SpaceId::MAIN, 64);
        let dst_addr = Addr::new(SpaceId::local_store(0), 64);
        let payload: Vec<u8> = (0..len).map(|i| (i * 7 + 13) as u8).collect();
        src.write_bytes(src_addr, &payload).expect("fits");
        CopyRig {
            src,
            dst,
            src_addr,
            dst_addr,
            len,
            scratch: Vec::new(),
        }
    }

    fn checksum(&self) -> u64 {
        let bytes = self.dst.read_bytes(self.dst_addr, self.len).expect("fits");
        bytes.iter().fold(0u64, |acc, &b| {
            acc.wrapping_mul(31).wrapping_add(u64::from(b))
        })
    }

    /// Seed-style transfer: materialise the source bytes as an owned
    /// `Vec`, then write them — one heap allocation per copy.
    ///
    /// # Panics
    ///
    /// Panics if the rig's addresses fall outside the regions (they
    /// cannot: `new` sizes the regions to fit).
    #[must_use]
    pub fn step_legacy(&mut self) -> u64 {
        let data = self
            .src
            .read_bytes(self.src_addr, self.len)
            .expect("fits")
            .to_vec();
        self.dst.write_bytes(self.dst_addr, &data).expect("fits");
        self.checksum()
    }

    /// Current transfer: [`copy_between`]'s direct slice-to-slice copy.
    ///
    /// # Panics
    ///
    /// As for [`CopyRig::step_legacy`].
    #[must_use]
    pub fn step_new(&mut self) -> u64 {
        copy_between(
            &self.src,
            self.src_addr,
            &mut self.dst,
            self.dst_addr,
            self.len,
        )
        .expect("fits");
        self.checksum()
    }

    /// Seed-style typed read: a fresh `Vec<u8>` per call, filled by the
    /// per-element decode loop the seed `read_pod_slice` used.
    ///
    /// # Panics
    ///
    /// As for [`CopyRig::step_legacy`].
    #[must_use]
    #[allow(clippy::needless_range_loop)] // faithful replica of the seed's indexed decode loop
    pub fn read_slice_legacy(&mut self) -> u64 {
        let bytes = self.src.read_bytes(self.src_addr, self.len).expect("fits");
        let mut out: Vec<u8> = Vec::with_capacity(self.len as usize);
        for i in 0..self.len as usize {
            out.push(u8::from_le_bytes([bytes[i]]));
        }
        out.iter()
            .fold(0u64, |acc, &b| acc.wrapping_add(u64::from(b)))
    }

    /// Current typed read: refill one caller-owned scratch vector via
    /// the bulk fast lane.
    ///
    /// # Panics
    ///
    /// As for [`CopyRig::step_legacy`].
    #[must_use]
    pub fn read_slice_new(&mut self) -> u64 {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.src
            .read_pod_slice_into::<u8>(self.src_addr, self.len, &mut scratch)
            .expect("fits");
        let sum = scratch
            .iter()
            .fold(0u64, |acc, &b| acc.wrapping_add(u64::from(b)));
        self.scratch = scratch;
        sum
    }
}

// ---------------------------------------------------------------------
// 3. VM call path: pop-into-Vec + HashMap slots vs slice + flat slots.
// ---------------------------------------------------------------------

#[derive(Clone, Copy)]
enum CallOp {
    /// Call a function with this many arguments already on the stack.
    Call { nargs: usize },
    /// Start an async offload parked in this handle slot.
    Spawn { slot: u16 },
    /// Join the handle in this slot.
    Join { slot: u16 },
}

/// The shared instruction trace: bursts of calls with 2–4 arguments
/// interleaved with spawn/join pairs across a handful of handle slots,
/// shaped like the inner loop of a compiled Offload/Mini program.
fn call_trace(rounds: u64) -> impl Iterator<Item = CallOp> {
    (0..rounds).flat_map(|round| {
        let slot = (round % 6) as u16;
        [
            CallOp::Call { nargs: 2 },
            CallOp::Call { nargs: 4 },
            CallOp::Spawn { slot },
            CallOp::Call { nargs: 3 },
            CallOp::Join { slot },
            CallOp::Call { nargs: 2 },
        ]
    })
}

/// Seed-style call path: arguments popped into a fresh reversed `Vec`
/// per call, handles in a `HashMap<u16, u64>`.
#[must_use]
pub fn vm_call_path_legacy(rounds: u64) -> u64 {
    let mut stack: Vec<u64> = Vec::with_capacity(64);
    let mut pending: HashMap<u16, u64> = HashMap::new();
    let mut acc = 0u64;
    let mut ticket = 0u64;
    stack.extend(0..8u64);
    for op in call_trace(rounds) {
        match op {
            CallOp::Call { nargs } => {
                let mut call_args = Vec::with_capacity(nargs);
                for _ in 0..nargs {
                    call_args.push(stack.pop().expect("argument"));
                }
                call_args.reverse();
                // "Execute": fold the frame's locals and push a result.
                let mut frame = 0u64;
                for (i, &arg) in call_args.iter().enumerate() {
                    frame = frame.wrapping_add(arg.rotate_left(i as u32));
                }
                acc = acc.wrapping_add(frame);
                stack.push(frame);
                while stack.len() < 8 {
                    stack.push(acc);
                }
            }
            CallOp::Spawn { slot } => {
                ticket += 1;
                pending.insert(slot, ticket);
            }
            CallOp::Join { slot } => {
                let joined = pending.remove(&slot).expect("spawned");
                acc = acc.wrapping_add(joined);
            }
        }
    }
    acc
}

/// Current call path: a stack split passes arguments as a borrowed
/// slice (then truncates), handles in a flat slot vector.
#[must_use]
pub fn vm_call_path_sliced(rounds: u64) -> u64 {
    let mut stack: Vec<u64> = Vec::with_capacity(64);
    let mut pending: Vec<Option<u64>> = Vec::new();
    let mut acc = 0u64;
    let mut ticket = 0u64;
    stack.extend(0..8u64);
    for op in call_trace(rounds) {
        match op {
            CallOp::Call { nargs } => {
                let split = stack.len() - nargs;
                let mut frame = 0u64;
                for (i, &arg) in stack[split..].iter().enumerate() {
                    frame = frame.wrapping_add(arg.rotate_left(i as u32));
                }
                stack.truncate(split);
                acc = acc.wrapping_add(frame);
                stack.push(frame);
                while stack.len() < 8 {
                    stack.push(acc);
                }
            }
            CallOp::Spawn { slot } => {
                ticket += 1;
                if pending.len() <= usize::from(slot) {
                    pending.resize(usize::from(slot) + 1, None);
                }
                pending[usize::from(slot)] = Some(ticket);
            }
            CallOp::Join { slot } => {
                let joined = pending[usize::from(slot)].take().expect("spawned");
                acc = acc.wrapping_add(joined);
            }
        }
    }
    acc
}

// ---------------------------------------------------------------------
// 4. Operand representation: boxed enum vs tagged machine word.
// ---------------------------------------------------------------------

/// Seed-style operand: a Rust enum per stack slot — 16 bytes, and a
/// discriminant match on every single pop.
#[derive(Clone, Copy)]
enum EnumVal {
    I(i32),
    F(f32),
    B(bool),
    P(u64),
}

/// Current-style operand: one machine word with the type tag in bits
/// 63..62, mirroring the VM's `Value` (docs/VM.md has the layout) — 8
/// bytes per slot, un/packing is a shift and a mask.
#[derive(Clone, Copy)]
struct Word(u64);

const WORD_TAG_SHIFT: u32 = 62;

impl Word {
    fn from_i(v: i32) -> Word {
        Word(u64::from(v as u32))
    }
    fn as_i(self) -> i32 {
        self.0 as u32 as i32
    }
    fn from_f(v: f32) -> Word {
        Word((1u64 << WORD_TAG_SHIFT) | u64::from(v.to_bits()))
    }
    fn as_f(self) -> f32 {
        f32::from_bits(self.0 as u32)
    }
    fn from_b(v: bool) -> Word {
        Word((2u64 << WORD_TAG_SHIFT) | u64::from(v))
    }
    fn as_b(self) -> bool {
        self.0 & 1 != 0
    }
    fn from_p(offset: u64) -> Word {
        Word((3u64 << WORD_TAG_SHIFT) | offset)
    }
    fn as_p(self) -> u64 {
        self.0 & ((1u64 << 48) - 1)
    }
}

/// The shared trace both operand kernels run: per round, an integer
/// add, a float multiply, an integer compare and a pointer bump, all
/// through the operand stack — the mixed-type traffic of one VM loop
/// iteration, with the memory system factored out.
#[must_use]
pub fn vm_value_enum(rounds: u64) -> u64 {
    let mut stack: Vec<EnumVal> = Vec::with_capacity(16);
    let mut acc = 0u64;
    for round in 0..rounds {
        let r = round as i32;
        stack.push(EnumVal::I(r));
        stack.push(EnumVal::I(3));
        let (b, a) = (pop_i(&mut stack), pop_i(&mut stack));
        stack.push(EnumVal::I(a.wrapping_add(b)));
        let s = pop_i(&mut stack);
        stack.push(EnumVal::B(s & 0xff < 100));
        stack.push(EnumVal::F(r as f32));
        stack.push(EnumVal::F(1.5));
        let (d, c) = (pop_f(&mut stack), pop_f(&mut stack));
        stack.push(EnumVal::F(c * d));
        stack.push(EnumVal::P(u64::from(r as u32 & 0xfff)));
        let p = pop_p(&mut stack);
        stack.push(EnumVal::P(p + 8));
        let (p, f, flag) = (pop_p(&mut stack), pop_f(&mut stack), pop_b(&mut stack));
        acc = acc
            .wrapping_add(p)
            .wrapping_add(u64::from(flag))
            .wrapping_add(u64::from(f.to_bits()));
    }
    acc
}

fn pop_i(stack: &mut Vec<EnumVal>) -> i32 {
    match stack.pop().expect("operand") {
        EnumVal::I(v) => v,
        _ => unreachable!("type-checked program"),
    }
}

fn pop_f(stack: &mut Vec<EnumVal>) -> f32 {
    match stack.pop().expect("operand") {
        EnumVal::F(v) => v,
        _ => unreachable!("type-checked program"),
    }
}

fn pop_b(stack: &mut Vec<EnumVal>) -> bool {
    match stack.pop().expect("operand") {
        EnumVal::B(v) => v,
        _ => unreachable!("type-checked program"),
    }
}

fn pop_p(stack: &mut Vec<EnumVal>) -> u64 {
    match stack.pop().expect("operand") {
        EnumVal::P(v) => v,
        _ => unreachable!("type-checked program"),
    }
}

/// Same trace over tagged machine words.
#[must_use]
pub fn vm_value_tagged(rounds: u64) -> u64 {
    let mut stack: Vec<Word> = Vec::with_capacity(16);
    let mut acc = 0u64;
    for round in 0..rounds {
        let r = round as i32;
        stack.push(Word::from_i(r));
        stack.push(Word::from_i(3));
        let (b, a) = (
            stack.pop().expect("operand").as_i(),
            stack.pop().expect("operand").as_i(),
        );
        stack.push(Word::from_i(a.wrapping_add(b)));
        let s = stack.pop().expect("operand").as_i();
        stack.push(Word::from_b(s & 0xff < 100));
        stack.push(Word::from_f(r as f32));
        stack.push(Word::from_f(1.5));
        let (d, c) = (
            stack.pop().expect("operand").as_f(),
            stack.pop().expect("operand").as_f(),
        );
        stack.push(Word::from_f(c * d));
        stack.push(Word::from_p(u64::from(r as u32 & 0xfff)));
        let p = stack.pop().expect("operand").as_p();
        stack.push(Word::from_p(p + 8));
        let (p, f, flag) = (
            stack.pop().expect("operand").as_p(),
            stack.pop().expect("operand").as_f(),
            stack.pop().expect("operand").as_b(),
        );
        acc = acc
            .wrapping_add(p)
            .wrapping_add(u64::from(flag))
            .wrapping_add(u64::from(f.to_bits()));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_ledgers_agree() {
        assert_eq!(dma_ledger_legacy(500), dma_ledger_rings(500));
    }

    #[test]
    fn copy_kernels_agree() {
        let mut rig = CopyRig::new(1024);
        let a = rig.step_legacy();
        let b = rig.step_new();
        assert_eq!(a, b);
        assert_eq!(rig.read_slice_legacy(), rig.read_slice_new());
    }

    #[test]
    fn call_paths_agree() {
        assert_eq!(vm_call_path_legacy(1000), vm_call_path_sliced(1000));
    }

    #[test]
    fn value_kernels_agree() {
        assert_eq!(vm_value_enum(1000), vm_value_tagged(1000));
    }
}
