//! The `--autotune` front-end: E7 and E12 re-run with the trace-driven
//! cache-policy autotuner next to the hand-picked winner.
//!
//! For each experiment cell this module captures the access trace of
//! the workload (`capture_trace` in the experiment modules), feeds it to
//! `softcache::autotune::autotune`, and reports the autotuned winner
//! beside the hand-selected one. Two properties are asserted (the
//! process aborts if either fails, which is what makes `--autotune` a
//! usable CI check):
//!
//! - **bit-identical replay**: exact replay of the hand-picked
//!   configuration over the captured trace reproduces the measured
//!   in-offload cycles exactly, and
//! - **family agreement**: the autotuned winner is in the same cache
//!   family (naive / set-associative / stream) as the hand-picked
//!   winner — the §4.2 "profile and choose" loop closes mechanically on
//!   the same answer the profiling tables reached by hand.

use softcache::autotune::{autotune, replay_exact, TuneOptions};
use softcache::{CacheChoice, CacheConfig};

use crate::exp::{e07_softcache_matrix as e07, e12_cache_crossover as e12};
use crate::table::{cycles, Table};

/// Tuner options mirroring the benched machine (`MachineConfig::small`
/// with the cell-like cost model). `TuneOptions`' defaults are exactly
/// that machine, asserted here so a drift in either side is caught.
pub fn tune_options() -> TuneOptions {
    let opts = TuneOptions::default();
    debug_assert_eq!(
        opts.ls_access_cost,
        simcell::CostModel::cell_like().ls_access
    );
    debug_assert_eq!(opts.dma, simcell::CostModel::cell_like().dma);
    opts
}

/// The [`CacheChoice`] each hand-picked E7 column corresponds to.
pub fn hand_choice(kind: &str) -> CacheChoice {
    match kind {
        "none" => CacheChoice::Naive,
        "DM 4K" => CacheChoice::SetAssoc(CacheConfig::direct_mapped_4k()),
        "2-way 8K" => CacheChoice::SetAssoc(CacheConfig::new(64, 64, 2)),
        "4-way 16K" => CacheChoice::SetAssoc(CacheConfig::four_way_16k()),
        "stream" => CacheChoice::Stream(CacheConfig::new(1024, 1, 1)),
        other => unreachable!("unknown cache kind {other}"),
    }
}

fn assert_bit_identical(context: &str, measured: u64, replayed: u64) {
    assert_eq!(
        measured, replayed,
        "{context}: exact replay ({replayed}) must reproduce the measured cycles ({measured}) \
         bit-identically"
    );
}

/// E7 with an autotuned column: per pattern, the hand-picked winner
/// (minimum measured cycles over the five profiled kinds), the
/// autotuner's winner over the captured trace, and the replay evidence.
///
/// # Panics
///
/// Panics if replay is not bit-identical to measurement or the winner
/// families disagree — this is the `--autotune` acceptance gate.
pub fn e7_report(quick: bool) -> Table {
    let accesses = e07::access_count(quick);
    let opts = tune_options();
    let mut table = Table::new(
        "E7-AT",
        "E7 autotuned: trace-driven cache choice vs hand-picked (Sec. 4.2)",
        "the autotuner closes the paper's profile-and-choose loop: replaying the captured \
         access trace reproduces every measured cell bit-identically and picks the same \
         cache family as hand profiling",
        vec![
            "pattern",
            "hand pick",
            "hand cycles",
            "replayed",
            "autotuned",
            "tuned cycles",
            "model cycles",
            "agree",
        ],
    );
    for pattern in e07::PATTERNS {
        let trace = e07::capture_trace(pattern, accesses);
        // Hand profiling: measure every kind, keep the best.
        let mut hand = ("", u64::MAX);
        for kind in e07::CACHES {
            let (measured, _) = e07::measure(kind, pattern, accesses);
            // Every cell must be reproduced exactly by trace replay.
            let replayed = replay_exact(&hand_choice(kind), &trace, &opts)
                .expect("replay of a measured config succeeds");
            assert_bit_identical(&format!("E7 {pattern}/{kind}"), measured, replayed);
            if measured < hand.1 {
                hand = (kind, measured);
            }
        }
        let report = autotune(&trace, &opts).expect("search space is valid");
        let winner = report.winner();
        let tuned_cycles = winner.exact_cycles.expect("winner was validated");
        let hand_family = hand_choice(hand.0).family();
        assert_eq!(
            winner.choice.family(),
            hand_family,
            "E7 {pattern}: autotuned winner {} must be in the hand-picked family {hand_family}",
            winner.choice
        );
        assert!(
            tuned_cycles <= hand.1,
            "E7 {pattern}: the autotuned winner ({tuned_cycles}) cannot lose to a hand pick \
             ({}) that is inside its own search space",
            hand.1
        );
        table.push_row(vec![
            pattern.to_string(),
            hand.0.to_string(),
            cycles(hand.1),
            cycles(replay_exact(&hand_choice(hand.0), &trace, &opts).expect("replay succeeds")),
            winner.choice.to_string(),
            cycles(tuned_cycles),
            cycles(winner.model_cycles),
            "yes".to_string(),
        ]);
    }
    table
}

/// Tuner options for E12: the experiment isolates *lookup overhead vs
/// repeated transfers*, so candidates keep its premise — line size
/// equals the access stride (each line holds exactly one touched datum:
/// no spatial-locality subsidy) and no streaming prefetch (which would
/// exploit the sweep order and change the variable under study). The
/// tuner still sweeps capacity, associativity, write policy and naive.
pub fn e12_options() -> TuneOptions {
    let mut opts = tune_options();
    opts.line_sizes = vec![e12::STRIDE];
    opts.stream_lines = Vec::new();
    opts
}

/// E12 with an autotuned column: per reuse factor, naive vs the
/// hand-picked 4-way cache vs the autotuner's winner over the captured
/// trace (which includes the per-access compute cycles, so replay totals
/// match the measured offload durations exactly).
///
/// # Panics
///
/// As for [`e7_report`].
pub fn e12_report(quick: bool) -> Table {
    let opts = e12_options();
    let mut table = Table::new(
        "E12-AT",
        "E12 autotuned: cache-vs-naive crossover found by the tuner (Sec. 4.2)",
        "the autotuner reproduces the crossover: naive wins the single-touch sweep, a \
         set-associative cache wins as soon as data is reused",
        vec![
            "reuse factor",
            "naive",
            "hand cached",
            "hand winner",
            "autotuned",
            "tuned cycles",
            "agree",
        ],
    );
    for &reuse in e12::reuse_factors(quick) {
        let trace = e12::capture_trace(reuse);
        let (naive, cached) = e12::measure(reuse);
        let naive_replay =
            replay_exact(&CacheChoice::Naive, &trace, &opts).expect("naive replay succeeds");
        assert_bit_identical(&format!("E12 reuse={reuse} naive"), naive, naive_replay);
        let cached_replay = replay_exact(
            &CacheChoice::SetAssoc(CacheConfig::four_way_16k()),
            &trace,
            &opts,
        )
        .expect("cached replay succeeds");
        assert_bit_identical(&format!("E12 reuse={reuse} cached"), cached, cached_replay);

        let hand_family = if cached < naive {
            "set-associative"
        } else {
            "naive"
        };
        let report = autotune(&trace, &opts).expect("search space is valid");
        let winner = report.winner();
        let tuned_cycles = winner.exact_cycles.expect("winner was validated");
        assert_eq!(
            winner.choice.family(),
            hand_family,
            "E12 reuse={reuse}: autotuned winner {} must match the hand winner family \
             {hand_family}",
            winner.choice
        );
        table.push_row(vec![
            reuse.to_string(),
            cycles(naive),
            cycles(cached),
            hand_family.to_string(),
            winner.choice.to_string(),
            cycles(tuned_cycles),
            "yes".to_string(),
        ]);
    }
    table
}

/// Runs both autotuned reports (the `paper_tables --autotune` body).
pub fn run(quick: bool, markdown: bool) {
    for table in [e7_report(quick), e12_report(quick)] {
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("{table}");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softcache::autotune::model_cycles;

    #[test]
    fn e12_quick_report_asserts_pass() {
        let t = e12_report(true);
        assert_eq!(t.rows.len(), 2);
        // reuse=1: naive wins; reuse=4: the cache family wins.
        assert!(t.rows[0].iter().any(|c| c == "naive"));
        assert!(t.rows[1].iter().any(|c| c == "set-associative"));
    }

    #[test]
    fn model_ranks_measured_e7_kinds_like_measurement() {
        // The analytic model alone must reproduce the measured ordering
        // of the five hand kinds on the sequential pattern (everything
        // here is 16-byte aligned, so the model is bit-exact).
        let trace = e07::capture_trace("sequential", 256);
        let opts = tune_options();
        for kind in e07::CACHES {
            let (measured, _) = e07::measure(kind, "sequential", 256);
            let modeled = model_cycles(&hand_choice(kind), &trace, &opts);
            assert_eq!(modeled, measured, "model drifted for {kind}");
        }
    }
}
