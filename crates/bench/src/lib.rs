//! The experiment harness of the Offload reproduction.
//!
//! Every quantitative or mechanistic claim in the paper maps to one
//! experiment here (DESIGN.md §3 has the full index); each experiment
//! builds its workload on the simulated machine, runs every compared
//! configuration, and emits a [`Table`] whose *shape* — who wins, by
//! roughly what factor, where crossovers fall — is what the
//! reproduction checks against the paper's text. Absolute cycle counts
//! depend on the cost model and are not the claim.
//!
//! Run `cargo run -p bench --bin paper_tables` for the full tables (add
//! `--markdown` for EXPERIMENTS.md-ready output), `cargo bench` for the
//! wall-time suites of the underlying kernels, or `cargo run --release
//! -p bench --bin bench_throughput` for the hot-path throughput report
//! (`BENCH_throughput.json`). `paper_tables --trace <file>` / `--stats`
//! capture a profiling trace instead of tables (see `PROFILING.md`).
//!
//! # Example
//!
//! ```
//! // Every experiment returns a Table whose shape (not absolute
//! // cycles) carries the claim; E2 in quick mode runs one sweep row.
//! let table = bench::exp::e02_offload_overlap::run(true);
//! assert_eq!(table.rows.len(), 1);
//! assert!(table.columns.iter().any(|c| c == "speedup"));
//! ```

#![warn(missing_docs)]

pub mod autotune;
pub mod exp;
pub mod farmlane;
pub mod hotpath;
pub mod perfbudget;
pub mod profile;
pub mod table;
pub mod timing;

pub use exp::run_all;
pub use table::Table;
