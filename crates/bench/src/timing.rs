//! A minimal wall-clock timing harness.
//!
//! The container has no external bench framework, so the wall-time
//! suites roll their own: calibrate a batch size against a 5 ms probe,
//! split the requested budget into a handful of equal sub-runs, and
//! report the *fastest* sub-run. On a single shared CPU (the only
//! environment these suites see — PROFILING.md has the details) the
//! mean of one contiguous run absorbs every scheduler preemption that
//! lands inside it and swings ±20 % run-to-run; the minimum of a few
//! sub-runs converges on the uncontended cost, which is the quantity
//! the perf budget pins. Good enough for the ×1.5-style ratios the
//! throughput suite reports; not a statistics package.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One timed kernel.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Label used in reports.
    pub name: String,
    /// Timed iterations (after warmup/calibration).
    pub iters: u64,
    /// Total wall time across all timed iterations.
    pub elapsed: Duration,
}

impl Measurement {
    /// Mean nanoseconds per iteration.
    #[must_use]
    pub fn nanos_per_iter(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }

    /// Iterations per second.
    #[must_use]
    pub fn iters_per_sec(&self) -> f64 {
        self.iters as f64 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// How many times faster `self` is than `other` (per-iteration).
    #[must_use]
    pub fn speedup_over(&self, other: &Measurement) -> f64 {
        other.nanos_per_iter() / self.nanos_per_iter().max(f64::MIN_POSITIVE)
    }
}

/// How many equal sub-runs the budget is split into; the fastest one
/// is reported. See the module docs for why minimum-of-k and not the
/// mean of one contiguous run.
const SUBRUNS: u32 = 8;

/// Times `f`, aiming to spend roughly `budget` of wall time on the
/// measured runs, and reports the fastest of `SUBRUNS` equal
/// sub-runs. The kernel's return value is [`black_box`]ed so the
/// optimizer cannot delete the work.
pub fn time<R>(name: &str, budget: Duration, mut f: impl FnMut() -> R) -> Measurement {
    // Warmup, and a first estimate of per-iteration cost.
    let mut batch: u64 = 1;
    let per_iter = loop {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let dt = start.elapsed();
        if dt >= Duration::from_millis(5) || batch >= 1 << 28 {
            break dt.as_secs_f64() / batch as f64;
        }
        batch *= 2;
    };
    // SUBRUNS equal slices of the budget; keep the fastest.
    let slice = budget.as_secs_f64() / f64::from(SUBRUNS);
    let iters = ((slice / per_iter.max(1e-12)).ceil() as u64).clamp(1, 1 << 32);
    let mut best = Duration::MAX;
    for _ in 0..SUBRUNS {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed < best {
            best = elapsed;
        }
    }
    Measurement {
        name: name.to_string(),
        iters,
        elapsed: best,
    }
}

/// Formats a measurement as a fixed-width report row.
#[must_use]
pub fn row(m: &Measurement) -> String {
    format!(
        "{:<44} {:>12.1} ns/iter {:>14.0} iter/s ({} iters)",
        m.name,
        m.nanos_per_iter(),
        m.iters_per_sec(),
        m.iters
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_measures_something() {
        let mut x = 0u64;
        let m = time("spin", Duration::from_millis(10), || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert!(m.iters >= 1);
        assert!(m.elapsed > Duration::ZERO);
        assert!(m.nanos_per_iter() > 0.0);
    }

    #[test]
    fn speedup_is_ratio_of_per_iter_costs() {
        let fast = Measurement {
            name: "fast".into(),
            iters: 100,
            elapsed: Duration::from_nanos(100),
        };
        let slow = Measurement {
            name: "slow".into(),
            iters: 100,
            elapsed: Duration::from_nanos(300),
        };
        let ratio = fast.speedup_over(&slow);
        assert!((ratio - 3.0).abs() < 1e-9, "{ratio}");
    }
}
