//! Result tables, printed the way the paper's evaluation would report
//! them.

use std::fmt;

/// One experiment's result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. `"E1"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// The paper claim this table checks, quoted or paraphrased.
    pub claim: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        claim: impl Into<String>,
        columns: Vec<&str>,
    ) -> Table {
        Table {
            id: id.into(),
            title: title.into(),
            claim: claim.into(),
            columns: columns.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}: {}\n\n*{}*\n\n", self.id, self.title, self.claim);
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {}: {} ==", self.id, self.title)?;
        writeln!(f, "   claim: {}", self.claim)?;
        // Column widths.
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect();
        writeln!(f, "   {}", header.join("  "))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            writeln!(f, "   {}", cells.join("  "))?;
        }
        Ok(())
    }
}

/// Formats a cycle count with thousands separators.
pub fn cycles(value: u64) -> String {
    let digits: Vec<char> = value.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, d) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*d);
    }
    out.chars().rev().collect()
}

/// Formats a speedup factor.
pub fn speedup(base: u64, other: u64) -> String {
    if other == 0 {
        return "inf".to_string();
    }
    format!("{:.2}x", base as f64 / other as f64)
}

/// Formats a rate in percent.
pub fn percent(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_align() {
        let mut t = Table::new("E0", "demo", "a claim", vec!["n", "cycles"]);
        t.push_row(vec!["1".into(), "10".into()]);
        t.push_row(vec!["100".into(), "12345".into()]);
        let text = t.to_string();
        assert!(text.contains("E0: demo"));
        assert!(text.contains("a claim"));
        let md = t.to_markdown();
        assert!(md.contains("| n | cycles |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_checked() {
        let mut t = Table::new("E0", "demo", "", vec!["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(cycles(1234567), "1,234,567");
        assert_eq!(cycles(12), "12");
        assert_eq!(speedup(200, 100), "2.00x");
        assert_eq!(speedup(1, 0), "inf");
        assert_eq!(percent(0.375), "37.5%");
    }
}
