//! The `bench_throughput --farm` lane: worlds/sec scaling of the sim
//! farm at 1/2/4/N worker threads.
//!
//! ## Why the scaling figure uses the worker critical path
//!
//! CI runners and dev containers routinely expose *fewer* CPUs than
//! the farm has workers — the extreme being a 1-CPU cgroup, where four
//! workers are time-sliced onto a single core and wall-clock time
//! cannot improve no matter how perfectly the farm parallelises. Wall
//! time there measures the hypervisor, not the farm.
//!
//! What the farm actually controls is the **worker critical path**:
//! the largest per-worker CPU time in the lane (per-thread counters
//! via [`simfarm::thread_cpu_nanos`]). With one worker the critical
//! path is the whole batch; with four balanced workers it is a quarter
//! of it — exactly the quantity that becomes wall time the moment the
//! box has enough cores. The report carries **both**: `worlds_per_sec`
//! / `farm_sim_cycles_per_sec` on the critical path (the scaling
//! signal the perf budget enforces) and the `wall_*` twins for reading
//! absolute throughput on the box at hand.
//!
//! Every lane also re-checks bit-identity against the single-thread
//! lane's world hashes, so a scheduling bug cannot buy throughput by
//! corrupting worlds.

use std::time::Instant;

use simfarm::{Farm, WorldSpec};

/// One measured worker count.
#[derive(Clone, Debug)]
pub struct FarmLane {
    /// Worker threads in the pool.
    pub threads: usize,
    /// Wall seconds for the whole submit+collect batch.
    pub wall_secs: f64,
    /// Largest per-worker CPU seconds — the lane's critical path.
    pub critical_path_secs: f64,
    /// Worlds per critical-path second (the scaling metric).
    pub worlds_per_sec: f64,
    /// Simulated cycles retired per critical-path second, aggregated
    /// over every world in the batch.
    pub farm_sim_cycles_per_sec: f64,
    /// Worlds per wall second on this box.
    pub wall_worlds_per_sec: f64,
    /// Simulated cycles the batch retired (identical across lanes).
    pub batch_sim_cycles: u64,
    /// Per-world FNV digests, in submission order.
    pub hashes: Vec<u64>,
}

/// The full farm section of the throughput report.
#[derive(Clone, Debug)]
pub struct FarmBench {
    /// Worlds per lane.
    pub worlds: usize,
    /// Simulated cycles in one batch (identical across lanes).
    pub batch_sim_cycles: u64,
    /// One row per measured worker count.
    pub lanes: Vec<FarmLane>,
}

impl FarmBench {
    /// Critical-path speedup of the `threads`-worker lane over the
    /// single-worker lane (0.0 when either lane is missing).
    pub fn scaling(&self, threads: usize) -> f64 {
        let base = self.lanes.iter().find(|l| l.threads == 1);
        let lane = self.lanes.iter().find(|l| l.threads == threads);
        match (base, lane) {
            (Some(b), Some(l)) if l.critical_path_secs > 0.0 => {
                b.critical_path_secs / l.critical_path_secs
            }
            _ => 0.0,
        }
    }
}

/// The standard batch: uniform quick worlds, differing only by seed,
/// so lanes stay load-balanced and the scaling figure measures the
/// farm rather than workload skew.
pub fn spec_batch(worlds: usize) -> Vec<WorldSpec> {
    (0..worlds as u64).map(WorldSpec::quick).collect()
}

/// Runs one lane: a warm-up batch (machine construction, first-touch
/// page faults, cache fill), then the measured batch on the recycled
/// arenas — the steady state a long-lived farm actually operates in.
/// The warm-up doubles as a reuse check: its world hashes must match
/// the measured pass bit for bit.
///
/// # Panics
///
/// Panics if any world errors or the two passes disagree — the bench
/// batch is well-formed by construction, so either is a farm bug worth
/// failing loudly on.
pub fn run_lane(specs: &[WorldSpec], threads: usize) -> FarmLane {
    // Round-robin: deterministic per-worker split for the uniform
    // batch, so the critical path measures the farm, not timeslice
    // burstiness (see module docs).
    let mut farm = Farm::round_robin(threads).expect("thread count is positive");
    for spec in specs {
        farm.submit(*spec);
    }
    let warm_hashes: Vec<u64> = farm
        .collect()
        .iter()
        .map(|r| {
            r.outcome
                .as_ref()
                .expect("bench worlds are well-formed")
                .world_hash
        })
        .collect();

    let busy_before = farm.worker_busy_nanos();
    let wall_start = Instant::now();
    for spec in specs {
        farm.submit(*spec);
    }
    let reports = farm.collect();
    let wall_secs = wall_start.elapsed().as_secs_f64();
    let busy_after = farm.worker_busy_nanos();
    let critical_path_secs = busy_after
        .iter()
        .zip(&busy_before)
        .map(|(after, before)| after - before)
        .max()
        .unwrap_or(0) as f64
        / 1e9;
    let mut batch_sim_cycles = 0u64;
    let mut hashes = Vec::with_capacity(reports.len());
    for report in &reports {
        let output = report
            .outcome
            .as_ref()
            .expect("bench worlds are well-formed");
        batch_sim_cycles += output.sim_cycles;
        hashes.push(output.world_hash);
    }
    assert_eq!(
        warm_hashes, hashes,
        "recycled machines diverged from their first run at {threads} workers"
    );
    // On exotic platforms with no CPU counters the workers fall back
    // to wall deltas, which keeps the figures defined (if noisier).
    let denom = if critical_path_secs > 0.0 {
        critical_path_secs
    } else {
        wall_secs
    };
    FarmLane {
        threads,
        wall_secs,
        critical_path_secs,
        worlds_per_sec: specs.len() as f64 / denom,
        farm_sim_cycles_per_sec: batch_sim_cycles as f64 / denom,
        wall_worlds_per_sec: specs.len() as f64 / wall_secs,
        batch_sim_cycles,
        hashes,
    }
}

/// Runs the whole farm bench: `worlds` uniform worlds at each worker
/// count in `threads`, verifying cross-lane bit-identity.
pub fn run_farm_bench(worlds: usize, threads: &[usize]) -> FarmBench {
    let specs = spec_batch(worlds);
    let mut lanes: Vec<FarmLane> = Vec::with_capacity(threads.len());
    for &t in threads {
        let lane = run_lane(&specs, t);
        if let Some(reference) = lanes.first() {
            assert_eq!(
                lane.hashes, reference.hashes,
                "farm worlds diverged between 1 and {t} workers"
            );
        }
        lanes.push(lane);
    }
    let batch_sim_cycles = lanes.first().map(|l| l.batch_sim_cycles).unwrap_or(0);
    FarmBench {
        worlds,
        batch_sim_cycles,
        lanes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_agree_on_world_hashes_and_scale_the_critical_path() {
        let bench = run_farm_bench(12, &[1, 2]);
        assert_eq!(bench.lanes.len(), 2);
        assert_eq!(bench.lanes[0].hashes, bench.lanes[1].hashes);
        assert_eq!(bench.lanes[0].hashes.len(), 12);
        assert!(bench.lanes[0].worlds_per_sec > 0.0);
        // Two workers halve the critical path (generous tolerance for
        // tiny batches and accounting noise).
        assert!(bench.scaling(2) > 1.2, "scaling(2) = {}", bench.scaling(2));
    }
}
