//! The CI perf-regression budget: compare freshly measured hot-path
//! speedups against the committed `BENCH_throughput.json` baseline.
//!
//! `bench_throughput --check <baseline.json> --max-regress 0.85` fails
//! (exit 1) if any hot path's measured speedup drops below 85% of the
//! baseline's — wall-clock noise is tolerated, halving a hot-path win
//! is not. The baseline format is this repository's own report, so the
//! parser is a few lines of string scanning rather than a JSON
//! dependency.

/// One budget violation: a hot path whose measured speedup fell below
/// `max_regress` times its baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// The hot-path key (e.g. `dma_issue_wait`).
    pub key: String,
    /// The committed baseline speedup.
    pub baseline: f64,
    /// The freshly measured speedup (0.0 when the key was not measured).
    pub current: f64,
}

impl Violation {
    /// `current / baseline` — below the budget's `max_regress` by
    /// construction.
    pub fn ratio(&self) -> f64 {
        if self.baseline > 0.0 {
            self.current / self.baseline
        } else {
            0.0
        }
    }
}

/// Extracts `(key, speedup)` pairs from the `"speedups"` section of a
/// `BENCH_throughput.json` report.
///
/// # Errors
///
/// Fails with a description if the section is missing, empty, or an
/// entry has no parseable `"speedup"` number.
pub fn parse_speedups(json: &str) -> Result<Vec<(String, f64)>, String> {
    let start = json
        .find("\"speedups\"")
        .ok_or_else(|| "no \"speedups\" section".to_string())?;
    let mut out = Vec::new();
    for line in json[start..].lines().skip(1) {
        let line = line.trim();
        if line.starts_with('}') {
            break;
        }
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some(key_end) = rest.find('"') else {
            continue;
        };
        let key = &rest[..key_end];
        let field = "\"speedup\":";
        let pos = line
            .rfind(field)
            .ok_or_else(|| format!("entry \"{key}\" has no \"speedup\" field"))?;
        let tail = line[pos + field.len()..].trim_start();
        let number: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect();
        let value: f64 = number
            .parse()
            .map_err(|e| format!("entry \"{key}\" has a bad speedup ({number:?}): {e}"))?;
        out.push((key.to_string(), value));
    }
    if out.is_empty() {
        return Err("\"speedups\" section has no entries".to_string());
    }
    Ok(out)
}

/// Checks measured speedups against a baseline: every baseline key must
/// be present in `current` with `current >= max_regress * baseline`.
/// Returns the violations (empty means the budget holds). Keys present
/// only in `current` are new hot paths and are ignored.
pub fn check_speedups(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    max_regress: f64,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (key, base) in baseline {
        let measured = current
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or(0.0);
        if measured < max_regress * base {
            violations.push(Violation {
                key: key.clone(),
                baseline: *base,
                current: measured,
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The committed baseline must always parse — this is the file the
    /// CI budget reads.
    #[test]
    fn committed_baseline_parses() {
        let json = include_str!("../../../BENCH_throughput.json");
        let speedups = parse_speedups(json).expect("committed baseline parses");
        // Five hot-path speedups, the simulated pipeline-overlap,
        // graph-frontier and mode-elision lanes, plus the two farm
        // scaling lanes.
        assert_eq!(speedups.len(), 10);
        assert!(speedups.iter().any(|(k, _)| k == "dma_issue_wait"));
        assert!(speedups.iter().any(|(k, _)| k == "graph_frontier"));
        assert!(speedups.iter().any(|(k, _)| k == "vm_tagged_dispatch"));
        assert!(speedups.iter().any(|(k, _)| k == "vm_superinstr"));
        assert!(speedups.iter().any(|(k, _)| k == "pipeline_overlap"));
        assert!(speedups.iter().any(|(k, _)| k == "mode_elision"));
        assert!(speedups.iter().any(|(k, _)| k == "farm_scaling_2t"));
        assert!(speedups.iter().any(|(k, _)| k == "farm_scaling_4t"));
        assert!(speedups.iter().all(|&(_, v)| v > 1.0));
    }

    #[test]
    fn parser_rejects_malformed_reports() {
        assert!(parse_speedups("{}").is_err());
        assert!(parse_speedups("{ \"speedups\": {\n}\n}").is_err());
        let bad = "{ \"speedups\": {\n  \"x\": { \"speedup\": oops }\n } }";
        assert!(parse_speedups(bad).is_err());
    }

    #[test]
    fn budget_flags_only_real_regressions() {
        let baseline = vec![("a".to_string(), 4.0), ("b".to_string(), 2.0)];
        // b regressed to 60% of baseline; a is within budget.
        let current = vec![("a".to_string(), 3.6), ("b".to_string(), 1.2)];
        let violations = check_speedups(&baseline, &current, 0.85);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].key, "b");
        assert!(violations[0].ratio() < 0.85);
        assert!(check_speedups(&baseline, &current, 0.5).is_empty());
    }

    #[test]
    fn missing_keys_violate_the_budget() {
        let baseline = vec![("gone".to_string(), 2.0)];
        let violations = check_speedups(&baseline, &[], 0.85);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].current, 0.0);
    }
}
