//! Traced runs for profiling — the capture side of `PROFILING.md`.
//!
//! [`traced_e2_frame`] re-runs E2's offloaded frame (paper Figure 2)
//! with the event log enabled and hands back the machine, ready for
//! [`simcell::chrome_trace_json`], [`simcell::ascii_timeline`] or
//! [`simcell::Machine::utilization_report`]. Tracing is zero simulated
//! cost, so the cycle counts match an untraced E2 run bit for bit —
//! [`traced_e2_frame_cycles`] is the untraced twin the regression tests
//! compare against.

use gamekit::{run_frame, AiConfig, EntityArray, FrameSchedule, FrameStats, WorldGen};
use memspace::Addr;
use simcell::{Machine, MachineConfig};

/// Entity count used by the traced frame (matches E2's quick sweep).
pub const TRACE_ENTITIES: u32 = 256;

fn setup(n: u32) -> (Machine, EntityArray, Addr) {
    let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
    let entities = EntityArray::alloc(&mut machine, n).expect("fits");
    let mut gen = WorldGen::new(0xE2);
    gen.populate(&mut machine, &entities, 60.0).expect("fits");
    let table = gen
        .candidate_table(&mut machine, n, AiConfig::default().candidates)
        .expect("fits");
    (machine, entities, table)
}

/// Runs one E2 offloaded frame with `trace` deciding whether the event
/// log records. The returned machine holds the log, the always-on
/// [`simcell::MachineStats`], and per-engine DMA statistics.
pub fn traced_e2_frame(trace: bool) -> (Machine, FrameStats) {
    let (mut machine, entities, table) = setup(TRACE_ENTITIES);
    machine.events_mut().set_enabled(trace);
    let stats = run_frame(
        &mut machine,
        &entities,
        table,
        &AiConfig::default(),
        FrameSchedule::Offloaded { accel: 0 },
    )
    .expect("frame runs");
    (machine, stats)
}

/// Host cycles of one untraced E2 offloaded frame — the baseline the
/// zero-cost regression tests pin traced runs against.
pub fn traced_e2_frame_cycles() -> u64 {
    traced_e2_frame(false).1.host_cycles
}

/// Runs one E15 skewed frame under the work-stealing scheduler with
/// `trace` deciding whether the event log records. The returned
/// machine's log carries the scheduler lanes (`sched N` in the Chrome
/// export): tile-assignment slices, idle gaps, enqueue and steal
/// instants — the capture side of PROFILING.md's "Reading the
/// scheduler lane".
pub fn traced_sched_frame(trace: bool) -> (Machine, offload_rt::sched::SchedReport) {
    use crate::exp::e15_sched_policies::{skewed_costs, ACCELS, TILES};
    use gamekit::ai_frame_sched;
    use offload_rt::sched::SchedPolicy;

    let n = 512;
    let config = AiConfig::default();
    let mut machine = Machine::new(MachineConfig::default()).expect("config valid");
    machine.events_mut().set_enabled(trace);
    let entities = EntityArray::alloc(&mut machine, n).expect("fits");
    let mut gen = WorldGen::new(0xE15);
    gen.populate(&mut machine, &entities, 70.0).expect("fits");
    let table = gen
        .candidate_table(&mut machine, n, config.candidates)
        .expect("fits");
    let report = ai_frame_sched(
        &mut machine,
        &entities,
        table,
        &config,
        ACCELS,
        TILES,
        SchedPolicy::WorkStealing,
        &skewed_costs(),
    )
    .expect("tiles fit");
    (machine, report)
}

/// Runs one E16 work-stealing frame under fire — a uniform fault plan
/// at E16's middle rate with the full retry/evict/fallback stack on —
/// with `trace` deciding whether the event log records. The returned
/// machine's log carries the fault lanes (`faults N` in the Chrome
/// export): injection instants and the retry / evict / host-fallback
/// responses — the capture side of PROFILING.md's "Reading the faults
/// lane".
pub fn traced_fault_frame(trace: bool) -> (Machine, offload_rt::sched::SchedReport) {
    use crate::exp::e16_fault_recovery::{ACCELS, BACKOFF, FAULT_SEED, RETRIES, TILES};
    use gamekit::ai_frame_sched_recovering;
    use offload_rt::sched::SchedPolicy;
    use simcell::FaultPlan;

    let n = 512;
    let config = AiConfig::default();
    let mut machine = Machine::new(MachineConfig::default()).expect("config valid");
    machine.events_mut().set_enabled(trace);
    let entities = EntityArray::alloc(&mut machine, n).expect("fits");
    let mut gen = WorldGen::new(0xE16);
    gen.populate(&mut machine, &entities, 70.0).expect("fits");
    let table = gen
        .candidate_table(&mut machine, n, config.candidates)
        .expect("fits");
    let report = ai_frame_sched_recovering(
        &mut machine,
        &entities,
        table,
        &config,
        ACCELS,
        TILES,
        SchedPolicy::WorkStealing,
        FaultPlan::uniform(FAULT_SEED, 0.05),
        RETRIES,
        BACKOFF,
    )
    .expect("recovery absorbs every fault");
    (machine, report)
}

/// Runs one pipelined staged frame (E17's skin → collide → resolve
/// chain through `machine.pipeline()`) with `trace` deciding whether
/// the event log records. The returned machine's log carries the
/// pipeline lanes (`pipe N` in the Chrome export): per-stage chunk
/// slices plus input-wait and backpressure stalls — the capture side
/// of PROFILING.md's "Reading the pipeline lane".
pub fn traced_pipe_frame(trace: bool) -> (Machine, offload_rt::PipeReport) {
    use gamekit::staged_frame_pipeline;

    let n = 512;
    let mut machine = Machine::new(MachineConfig::default()).expect("config valid");
    machine.events_mut().set_enabled(trace);
    let entities = EntityArray::alloc(&mut machine, n).expect("fits");
    WorldGen::new(0xE17)
        .populate(&mut machine, &entities, 100.0)
        .expect("fits");
    let report = staged_frame_pipeline(&mut machine, &entities, 64, 2).expect("three stages fit");
    (machine, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_frame_records_the_figure2_events() {
        let (machine, stats) = traced_e2_frame(true);
        assert!(stats.schedule_was_offloaded);
        assert!(!machine.events().is_empty());
        assert!(machine.stats().offloads >= 1);
    }

    #[test]
    fn tracing_never_changes_frame_cycles() {
        let (_, traced) = traced_e2_frame(true);
        let (_, untraced) = traced_e2_frame(false);
        assert_eq!(traced.host_cycles, untraced.host_cycles);
        assert_eq!(traced.ai_cycles, untraced.ai_cycles);
        assert_eq!(traced.pairs, untraced.pairs);
    }

    #[test]
    fn traced_sched_frame_records_scheduler_events_at_zero_cost() {
        let (machine, report) = traced_sched_frame(true);
        let (_, untraced_report) = traced_sched_frame(false);
        assert_eq!(report.cycles, untraced_report.cycles);
        assert!(report.steals > 0, "the skewed frame steals");
        let stats = machine.stats();
        assert_eq!(u64::from(report.tiles), stats.sched_tiles);
        assert_eq!(u64::from(report.steals), stats.sched_steals);
        assert!(machine
            .events()
            .events()
            .iter()
            .any(|e| matches!(e.kind, simcell::EventKind::SchedSteal { .. })));
    }

    #[test]
    fn traced_pipe_frame_records_pipeline_events_at_zero_cost() {
        let (machine, report) = traced_pipe_frame(true);
        let (_, untraced_report) = traced_pipe_frame(false);
        assert_eq!(report, untraced_report, "tracing is zero simulated cost");
        let stats = machine.stats();
        assert_eq!(
            stats.pipe_stage_runs,
            u64::from(report.stages) * u64::from(report.chunks)
        );
        assert_eq!(stats.pipe_chunks, u64::from(report.chunks));
        let events = machine.events().events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, simcell::EventKind::PipeRun { .. })));
        assert!(
            report.input_wait_cycles > 0,
            "the staged frame's uneven stage costs must stall somewhere: {report:?}"
        );
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, simcell::EventKind::PipeWait { .. })));
    }

    #[test]
    fn traced_fault_frame_records_fault_events_at_zero_cost() {
        let (machine, report) = traced_fault_frame(true);
        let (_, untraced_report) = traced_fault_frame(false);
        assert_eq!(report.cycles, untraced_report.cycles);
        assert!(report.faults > 0, "the 5% plan must inject");
        let events = machine.events().events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, simcell::EventKind::FaultInjected { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, simcell::EventKind::RecoveryApplied { .. })));
    }
}
