//! E13 (extension) — §4.1's suggested elaboration: on-demand code
//! loading for dispatch-domain misses.
//!
//! The paper: "Elaborations on this technique could implement
//! alternative behaviours, such as on-demand code loading for functions
//! not present in local memory." This ablation measures what that
//! buys: full pre-annotation (every method pre-compiled, maximum
//! local-store footprint, zero misses) against a fixed code-arena
//! budget with LRU loading, across call patterns with different
//! locality.

use memspace::Addr;
use offload_rt::{
    accel_virtual_dispatch, dispatch_with_loading, ClassRegistry, CodeLoader, Domain, DuplicateId,
    FnAddr, MethodSlot, DEFAULT_CODE_SIZE,
};
use simcell::{Machine, MachineConfig, SimError};

use crate::table::{cycles, Table};

/// Calls performed per configuration.
const CALLS: u32 = 512;

struct Rig {
    registry: ClassRegistry,
    /// Fully annotated domain (the preload configuration).
    full_domain: Domain,
    class_ids: Vec<u32>,
    globals: Vec<FnAddr>,
}

fn rig(methods: u32) -> Rig {
    let mut registry = ClassRegistry::new();
    let mut full_domain = Domain::new();
    let mut class_ids = Vec::new();
    let mut globals = Vec::new();
    for i in 0..methods {
        let global = registry.fresh_fn(format!("C{i}::update"));
        let local = registry.fresh_fn(format!("C{i}::update [spu]"));
        let class = registry.register_class(format!("C{i}"), None);
        registry.define_method(class, MethodSlot(0), global);
        full_domain.add(global, &[(DuplicateId(1), local)]);
        class_ids.push(class.0);
        globals.push(global);
    }
    Rig {
        registry,
        full_domain,
        class_ids,
        globals,
    }
}

/// The sequence of method indices called, per pattern.
fn call_sequence(pattern: &str, methods: u32) -> Vec<u32> {
    match pattern {
        // Worst case for any finite budget: uniform rotation.
        "round-robin" => (0..CALLS).map(|i| i % methods).collect(),
        // Good locality: 90% of calls hit a 4-method hot set.
        "hot-set" => {
            let mut state = 0xC0DEu64;
            (0..CALLS)
                .map(|i| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let r = (state >> 33) as u32;
                    if i % 10 != 0 {
                        r % 4.min(methods)
                    } else {
                        r % methods
                    }
                })
                .collect()
        }
        other => unreachable!("unknown pattern {other}"),
    }
}

/// Cycles per call (and loads) for one configuration.
///
/// `budget_methods == None` means the preload configuration: every
/// method annotated in the domain, no loader.
pub fn measure(methods: u32, pattern: &str, budget_methods: Option<u32>) -> (u64, u64) {
    let r = rig(methods);
    let sequence = call_sequence(pattern, methods);
    let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
    let image = CodeLoader::alloc_image(&mut machine, 64 * 1024).expect("fits");
    // One object per class, in main memory.
    let objs: Vec<Addr> = r
        .class_ids
        .iter()
        .map(|&cid| {
            let obj = machine.alloc_main(64, 16).expect("fits");
            machine.main_mut().write_pod(obj, &cid).expect("fits");
            obj
        })
        .collect();

    let handle = machine
        .offload(0)
        .spawn(|ctx| -> Result<(u64, u64), SimError> {
            let t0 = ctx.now();
            let mut loads = 0u64;
            match budget_methods {
                None => {
                    for &m in &sequence {
                        accel_virtual_dispatch(
                            ctx,
                            &r.registry,
                            &r.full_domain,
                            objs[m as usize],
                            MethodSlot(0),
                            DuplicateId(1),
                        )
                        .map_err(|e| SimError::BadConfig {
                            reason: e.to_string(),
                        })?;
                    }
                }
                Some(budget) => {
                    let empty = Domain::new();
                    let mut loader = CodeLoader::new(ctx, budget * DEFAULT_CODE_SIZE, image)?;
                    for &m in &sequence {
                        dispatch_with_loading(
                            ctx,
                            &r.registry,
                            &empty,
                            &mut loader,
                            objs[m as usize],
                            MethodSlot(0),
                            DuplicateId(1),
                            DEFAULT_CODE_SIZE,
                        )
                        .map_err(|e| SimError::BadConfig {
                            reason: e.to_string(),
                        })?;
                    }
                    loads = loader.stats().loads;
                }
            }
            Ok(((ctx.now() - t0) / u64::from(CALLS), loads))
        })
        .expect("accel 0 exists");
    let result = machine.join(handle).expect("dispatch runs");
    let _ = r.globals;
    result
}

/// Runs E13.
pub fn run(quick: bool) -> Table {
    let method_counts: &[u32] = if quick { &[16] } else { &[16, 64, 128] };
    let mut table = Table::new(
        "E13",
        "Extension: on-demand code loading vs full pre-annotation (Sec. 4.1)",
        "the paper suggests on-demand code loading as an alternative to the domain-miss \
         exception; a small code arena serves large method working sets when calls have \
         locality, and thrashes without it (paper Sec. 4.1, 'elaborations')",
        vec![
            "methods",
            "pattern",
            "preload (cyc/call)",
            "budget 4 (cyc/call, loads)",
            "budget 16 (cyc/call, loads)",
            "preload LS footprint",
            "budget-16 LS footprint",
        ],
    );
    for &methods in method_counts {
        for pattern in ["round-robin", "hot-set"] {
            let (preload, _) = measure(methods, pattern, None);
            let (b4, l4) = measure(methods, pattern, Some(4));
            let (b16, l16) = measure(methods, pattern, Some(16));
            table.push_row(vec![
                methods.to_string(),
                pattern.to_string(),
                cycles(preload),
                format!("{} ({l4})", cycles(b4)),
                format!("{} ({l16})", cycles(b16)),
                format!("{} KiB", methods * DEFAULT_CODE_SIZE / 1024),
                format!("{} KiB", 16 * DEFAULT_CODE_SIZE / 1024),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_locality_decides_whether_loading_pays() {
        // Hot-set pattern: a 16-method budget behaves nearly like full
        // preload even with 128 methods.
        let (preload, _) = measure(128, "hot-set", None);
        let (budget, loads) = measure(128, "hot-set", Some(16));
        assert!(
            budget < preload * 3,
            "loading stays competitive under locality: {budget} vs {preload}"
        );
        assert!(loads < 128, "most calls hit resident code ({loads} loads)");

        // Round-robin with methods >> budget thrashes.
        let (_, thrash_loads) = measure(128, "round-robin", Some(4));
        assert_eq!(thrash_loads, u64::from(CALLS), "every call reloads");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the point is the numeric relation
    fn shape_budget_bounds_the_footprint_preload_does_not() {
        // That is the point of the elaboration: 128 methods would need
        // 256 KiB pre-loaded (the whole local store); the arena fixes it.
        assert!(128 * DEFAULT_CODE_SIZE >= memspace::LOCAL_STORE_SIZE);
        assert!(16 * DEFAULT_CODE_SIZE < memspace::LOCAL_STORE_SIZE / 4);
    }

    #[test]
    fn table_has_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.columns.len(), 7);
    }
}
