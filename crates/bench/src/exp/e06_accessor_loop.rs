//! E6 — §4.2: the pointer-chasing `move()` loop and the Array accessor.
//!
//! The paper's motivating loop iterates over a main-memory array of
//! object pointers, virtually calling `move()` on each: "each iteration
//! therefore incurs the latency of two dependent memory transfer
//! operations". Interposing the `Array` accessor bulk-transfers the
//! pointer array; routing the object accesses through a software cache
//! removes most of the rest.

use gamekit::{GameEntity, WorldGen};
use memspace::Addr;
use offload_rt::{ArrayAccessor, RemoteSlice};
use simcell::{Machine, MachineConfig, SimError};
use softcache::CacheConfig;

use crate::table::{cycles, speedup, Table};

/// Cycles of compute per `move()` body.
const MOVE_COMPUTE: u64 = 30;

struct Rig {
    machine: Machine,
    /// Array of pointers (byte offsets into main memory) to entities.
    pointer_table: Addr,
    count: u32,
}

fn rig(count: u32) -> Rig {
    let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
    // A pool of entities, larger than the pointer table, pointed into
    // in shuffled order (as a real scene graph would).
    let pool = 2 * count;
    let entities = machine
        .alloc_main_slice::<GameEntity>(pool)
        .expect("fits main memory");
    let mut gen = WorldGen::new(0xE6);
    let perm = gen.permutation(pool);
    let pointers: Vec<u32> = perm[..count as usize]
        .iter()
        .map(|&i| {
            entities
                .element(i, GameEntity::STRIDE)
                .expect("in range")
                .offset()
        })
        .collect();
    let pointer_table = machine.alloc_main_slice::<u32>(count).expect("fits");
    machine
        .main_mut()
        .write_pod_slice(pointer_table, &pointers)
        .expect("fits");
    Rig {
        machine,
        pointer_table,
        count,
    }
}

fn apply_move(e: &mut GameEntity) {
    e.pos = e.pos.add(e.vel.scale(1.0 / 60.0));
}

/// Style A: both the pointer table and the objects accessed naively.
fn naive(rig: &mut Rig) -> u64 {
    let table = rig.pointer_table;
    let count = rig.count;
    let handle = rig
        .machine
        .offload(0)
        .spawn(move |ctx| -> Result<(), SimError> {
            for i in 0..count {
                // Transfer 1: the pointer itself.
                let ptr: u32 = ctx.outer_read_pod(table.element(i, 4)?)?;
                let obj = Addr::new(memspace::SpaceId::MAIN, ptr);
                // Transfer 2 (dependent): the object.
                let mut e: GameEntity = ctx.outer_read_pod(obj)?;
                apply_move(&mut e);
                ctx.compute(MOVE_COMPUTE);
                ctx.outer_write_pod(obj, &e)?;
            }
            Ok(())
        })
        .expect("accel 0 exists");
    let elapsed = handle.elapsed();
    rig.machine.join(handle).expect("runs");
    elapsed
}

/// Style B: the paper's fix — `Array` accessor for the pointer table.
fn pointer_accessor(rig: &mut Rig) -> u64 {
    let table = rig.pointer_table;
    let count = rig.count;
    let handle = rig
        .machine
        .offload(0)
        .spawn(move |ctx| -> Result<(), SimError> {
            let pointers = ArrayAccessor::<u32>::fetch(ctx, table, count)?;
            for i in 0..count {
                let ptr = pointers.get(ctx, i)?;
                let obj = Addr::new(memspace::SpaceId::MAIN, ptr);
                let mut e: GameEntity = ctx.outer_read_pod(obj)?;
                apply_move(&mut e);
                ctx.compute(MOVE_COMPUTE);
                ctx.outer_write_pod(obj, &e)?;
            }
            Ok(())
        })
        .expect("accel 0 exists");
    let elapsed = handle.elapsed();
    rig.machine.join(handle).expect("runs");
    elapsed
}

/// Style C: accessor for the pointers plus a software cache for the
/// objects.
fn accessor_plus_cache(rig: &mut Rig) -> u64 {
    let table = rig.pointer_table;
    let count = rig.count;
    let handle = rig
        .machine
        .offload(0)
        .spawn(move |ctx| -> Result<(), SimError> {
            let mut cache = ctx.new_cache(CacheConfig::four_way_16k())?;
            let pointers = ArrayAccessor::<u32>::fetch(ctx, table, count)?;
            for i in 0..count {
                let ptr = pointers.get(ctx, i)?;
                let obj = Addr::new(memspace::SpaceId::MAIN, ptr);
                let mut e: GameEntity = ctx.cached_read_pod(&mut cache, obj)?;
                apply_move(&mut e);
                ctx.compute(MOVE_COMPUTE);
                ctx.cached_write_pod(&mut cache, obj, &e)?;
            }
            ctx.cache_flush(&mut cache)?;
            Ok(())
        })
        .expect("accel 0 exists");
    let elapsed = handle.elapsed();
    rig.machine.join(handle).expect("runs");
    elapsed
}

/// `(naive, accessor, accessor+cache)` cycles for `n` objects.
pub fn measure(n: u32) -> (u64, u64, u64) {
    (
        naive(&mut rig(n)),
        pointer_accessor(&mut rig(n)),
        accessor_plus_cache(&mut rig(n)),
    )
}

/// Runs E6.
pub fn run(quick: bool) -> Table {
    let sweeps: &[u32] = if quick { &[128] } else { &[64, 256, 1024] };
    let mut table = Table::new(
        "E6",
        "The move() loop: naive outer access vs Array accessor (Sec. 4.2)",
        "dereferencing the pointer array costs one high-latency transfer per iteration, plus a \
         dependent one for the object; the Array accessor bulk-transfers the pointer array \
         (paper Sec. 4.2)",
        vec![
            "objects",
            "naive",
            "ptr accessor",
            "accessor+cache",
            "accessor vs naive",
            "cache vs naive",
        ],
    );
    for &n in sweeps {
        let (naive, accessor, cached) = measure(n);
        table.push_row(vec![
            n.to_string(),
            cycles(naive),
            cycles(accessor),
            cycles(cached),
            speedup(naive, accessor),
            speedup(naive, cached),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_each_optimisation_step_wins() {
        let (naive, accessor, cached) = measure(256);
        assert!(
            accessor < naive,
            "accessor removes a transfer per iteration: {accessor} vs {naive}"
        );
        assert!(
            cached < accessor,
            "the object cache removes more: {cached} vs {accessor}"
        );
    }

    #[test]
    fn table_has_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.columns.len(), 6);
    }
}
