//! The experiments, one module per table/figure (see DESIGN.md §3).

pub mod e01_dma_styles;
pub mod e02_offload_overlap;
pub mod e03_domain_dispatch;
pub mod e04_component_restructure;
pub mod e05_ai_offload;
pub mod e06_accessor_loop;
pub mod e07_softcache_matrix;
pub mod e08_uniform_grouping;
pub mod e09_word_addressing;
pub mod e10_duplication;
pub mod e11_race_detection;
pub mod e12_cache_crossover;
pub mod e13_code_loading;
pub mod e14_multi_accel;
pub mod e15_sched_policies;
pub mod e16_fault_recovery;
pub mod e17_pipeline;
pub mod e18_graph;

use crate::table::Table;

/// Runs every experiment. `quick` shrinks workload sizes (used by the
/// test suite); the `paper_tables` binary runs full sizes.
pub fn run_all(quick: bool) -> Vec<Table> {
    vec![
        e01_dma_styles::run(quick),
        e02_offload_overlap::run(quick),
        e03_domain_dispatch::run(quick),
        e04_component_restructure::run(quick),
        e05_ai_offload::run(quick),
        e06_accessor_loop::run(quick),
        e07_softcache_matrix::run(quick),
        e08_uniform_grouping::run(quick),
        e09_word_addressing::run(quick),
        e10_duplication::run(quick),
        e11_race_detection::run(quick),
        e12_cache_crossover::run(quick),
        e13_code_loading::run(quick),
        e14_multi_accel::run(quick),
        e15_sched_policies::run(quick),
        e16_fault_recovery::run(quick),
        e17_pipeline::run(quick),
        e18_graph::run(quick),
    ]
}
