//! E11 — §2: finding DMA races statically and dynamically.
//!
//! The paper cites a static verifier (Donaldson et al., TACAS 2010) and
//! IBM's dynamic Race Check Library: "correct synchronization of DMA
//! operations is essential for software correctness, but difficult to
//! achieve in practice". This experiment runs a corpus of seeded-bug
//! kernels through both this workspace's static analyzer and its
//! dynamic checker (by interpreting the kernel against a real engine)
//! and reports what each catches.

use dma::{analyze_kernel, AccessKind, DmaEngine, DmaKernel, KernelOp, Tag, TagMask};
use memspace::{Addr, AddrRange, MemoryRegion, SpaceId, SpaceKind};

use crate::table::Table;

fn ls(offset: u32, len: u32) -> AddrRange {
    AddrRange::new(Addr::new(SpaceId::local_store(0), offset), len).expect("in range")
}

fn main_r(offset: u32, len: u32) -> AddrRange {
    AddrRange::new(Addr::new(SpaceId::MAIN, offset), len).expect("in range")
}

/// The kernel corpus: `(kernel, has seeded bug)`.
pub fn corpus() -> Vec<(DmaKernel, bool)> {
    let get = |l: AddrRange, r: AddrRange, tag: u8| KernelOp::Get {
        local: l,
        remote: r,
        tag,
    };
    let put = |l: AddrRange, r: AddrRange, tag: u8| KernelOp::Put {
        local: l,
        remote: r,
        tag,
    };
    let wait = |mask: u32| KernelOp::Wait { mask };
    let read = |range: AddrRange| KernelOp::Access {
        range,
        kind: AccessKind::Read,
    };
    let write = |range: AddrRange| KernelOp::Access {
        range,
        kind: AccessKind::Write,
    };

    let mut corpus = Vec::new();

    let mut k = DmaKernel::new("figure-1 correct");
    k.ops = vec![
        get(ls(0x100, 64), main_r(0x1000, 64), 1),
        get(ls(0x200, 64), main_r(0x2000, 64), 1),
        wait(1 << 1),
        read(ls(0x100, 64)),
        write(ls(0x200, 64)),
        put(ls(0x100, 64), main_r(0x1000, 64), 1),
        put(ls(0x200, 64), main_r(0x2000, 64), 1),
        wait(1 << 1),
    ];
    corpus.push((k, false));

    let mut k = DmaKernel::new("missing wait before read");
    k.ops = vec![
        get(ls(0x100, 64), main_r(0x1000, 64), 1),
        read(ls(0x100, 64)),
        wait(1 << 1),
    ];
    corpus.push((k, true));

    let mut k = DmaKernel::new("wait on the wrong tag");
    k.ops = vec![
        get(ls(0x100, 64), main_r(0x1000, 64), 1),
        wait(1 << 2),
        read(ls(0x100, 64)),
        wait(1 << 1),
    ];
    corpus.push((k, true));

    let mut k = DmaKernel::new("overlapping gets into one buffer");
    k.ops = vec![
        get(ls(0x100, 64), main_r(0x1000, 64), 1),
        get(ls(0x100, 64), main_r(0x2000, 64), 2),
        wait(0b110),
        read(ls(0x100, 64)),
    ];
    corpus.push((k, true));

    let mut k = DmaKernel::new("single-buffered loop, correct");
    k.ops = vec![KernelOp::Loop {
        body: vec![
            get(ls(0x100, 64), main_r(0x1000, 64), 1),
            wait(1 << 1),
            read(ls(0x100, 64)),
        ],
    }];
    corpus.push((k, false));

    let mut k = DmaKernel::new("single-buffered loop, missing wait");
    k.ops = vec![
        KernelOp::Loop {
            body: vec![
                get(ls(0x100, 64), main_r(0x1000, 64), 1),
                read(ls(0x100, 64)),
            ],
        },
        wait(1 << 1),
    ];
    corpus.push((k, true));

    let mut k = DmaKernel::new("double buffer, correct");
    k.ops = vec![
        get(ls(0x100, 64), main_r(0x1000, 64), 0),
        KernelOp::Loop {
            body: vec![
                get(ls(0x200, 64), main_r(0x2000, 64), 1),
                wait(1 << 0),
                read(ls(0x100, 64)),
                get(ls(0x100, 64), main_r(0x3000, 64), 0),
                wait(1 << 1),
                read(ls(0x200, 64)),
            ],
        },
        wait(0b11),
    ];
    corpus.push((k, false));

    let mut k = DmaKernel::new("double buffer, swapped waits");
    k.ops = vec![
        get(ls(0x100, 64), main_r(0x1000, 64), 0),
        KernelOp::Loop {
            body: vec![
                get(ls(0x200, 64), main_r(0x2000, 64), 1),
                wait(1 << 1),
                read(ls(0x100, 64)),
                get(ls(0x100, 64), main_r(0x3000, 64), 0),
                wait(1 << 0),
                read(ls(0x200, 64)),
            ],
        },
        wait(0b11),
    ];
    corpus.push((k, true));

    let mut k = DmaKernel::new("fire-and-forget put");
    k.ops = vec![
        write(ls(0x100, 64)),
        put(ls(0x100, 64), main_r(0x1000, 64), 3),
    ];
    corpus.push((k, true));

    let mut k = DmaKernel::new("overlapping puts to one destination");
    k.ops = vec![
        put(ls(0x100, 64), main_r(0x1000, 64), 1),
        put(ls(0x200, 64), main_r(0x1020, 64), 1),
        wait(1 << 1),
    ];
    corpus.push((k, true));

    corpus
}

/// Interprets a kernel against a real engine (loops run 4 iterations)
/// and returns the dynamic race count.
pub fn run_dynamic(kernel: &DmaKernel) -> u64 {
    let mut main = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 64 * 1024);
    let mut lsr = MemoryRegion::new(
        SpaceId::local_store(0),
        SpaceKind::LocalStore { accel: 0 },
        64 * 1024,
    );
    let mut engine = DmaEngine::new(SpaceId::local_store(0));
    let mut now = 0u64;
    exec_ops(&kernel.ops, &mut now, &mut engine, &mut main, &mut lsr);
    engine.race_checker().detected()
}

fn exec_ops(
    ops: &[KernelOp],
    now: &mut u64,
    engine: &mut DmaEngine,
    main: &mut MemoryRegion,
    lsr: &mut MemoryRegion,
) {
    for op in ops {
        match op {
            KernelOp::Get { local, remote, tag } => {
                let tag = Tag::new(*tag % 32).expect("in range");
                *now = engine
                    .get(
                        *now,
                        local.start(),
                        remote.start(),
                        local.len(),
                        tag,
                        main,
                        lsr,
                    )
                    .expect("corpus transfers are well-formed");
            }
            KernelOp::Put { local, remote, tag } => {
                let tag = Tag::new(*tag % 32).expect("in range");
                *now = engine
                    .put(
                        *now,
                        local.start(),
                        remote.start(),
                        local.len(),
                        tag,
                        main,
                        lsr,
                    )
                    .expect("corpus transfers are well-formed");
            }
            KernelOp::Wait { mask } => {
                *now = engine.wait(TagMask::from_bits(*mask), *now);
            }
            KernelOp::Access { range, kind } => {
                engine.note_local_access(*range, *kind, *now);
                *now += 6;
            }
            KernelOp::Loop { body } => {
                for _ in 0..4 {
                    exec_ops(body, now, engine, main, lsr);
                }
            }
        }
    }
}

/// Runs E11.
pub fn run(_quick: bool) -> Table {
    let mut table = Table::new(
        "E11",
        "DMA race detection: static analysis vs dynamic checking (Sec. 2)",
        "DMA synchronisation is essential but hard; both static (TACAS'10) and dynamic (IBM \
         Race Check Library) tools exist to find races (paper Sec. 2)",
        vec![
            "kernel",
            "seeded bug",
            "static findings",
            "dynamic races",
            "static verdict",
            "dynamic verdict",
        ],
    );
    for (kernel, buggy) in corpus() {
        let static_findings = analyze_kernel(&kernel).len();
        let dynamic_races = run_dynamic(&kernel);
        let verdict = |hit: bool| {
            if hit == buggy {
                "correct"
            } else if buggy {
                "MISSED"
            } else {
                "false alarm"
            }
        };
        table.push_row(vec![
            kernel.name.clone(),
            if buggy { "yes" } else { "no" }.to_string(),
            static_findings.to_string(),
            dynamic_races.to_string(),
            verdict(static_findings > 0).to_string(),
            verdict(dynamic_races > 0).to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_static_catches_every_seeded_bug_and_no_clean_kernel() {
        for (kernel, buggy) in corpus() {
            let findings = analyze_kernel(&kernel);
            assert_eq!(
                !findings.is_empty(),
                buggy,
                "static verdict for {}: {findings:?}",
                kernel.name
            );
        }
    }

    #[test]
    fn shape_dynamic_catches_access_races_but_not_all_bug_classes() {
        let corpus = corpus();
        // The dynamic checker never flags a clean kernel…
        for (kernel, buggy) in &corpus {
            if !buggy {
                assert_eq!(run_dynamic(kernel), 0, "false alarm in {}", kernel.name);
            }
        }
        // …catches most seeded bugs…
        let caught = corpus
            .iter()
            .filter(|(k, b)| *b && run_dynamic(k) > 0)
            .count();
        let total = corpus.iter().filter(|(_, b)| *b).count();
        assert!(caught >= total - 1, "dynamic caught {caught}/{total}");
        // …but misses at least one that only static analysis finds (the
        // fire-and-forget put has no conflicting access to observe).
        let (faf, _) = corpus
            .iter()
            .find(|(k, _)| k.name == "fire-and-forget put")
            .expect("kernel exists");
        assert_eq!(run_dynamic(faf), 0);
        assert!(!analyze_kernel(faf).is_empty());
    }

    #[test]
    fn table_has_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), corpus().len());
    }
}
