//! E2 — Figure 2: the offloaded frame loop.
//!
//! `doFrame` offloads AI strategy to the accelerator while the host
//! detects collisions, joining before the world update. This experiment
//! compares the sequential and offloaded schedules per frame.

use gamekit::{run_frame, AiConfig, EntityArray, FrameSchedule, WorldGen};
use memspace::Addr;
use simcell::{Machine, MachineConfig};

use crate::table::{cycles, speedup, Table};

fn setup(n: u32) -> (Machine, EntityArray, Addr) {
    let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
    let entities = EntityArray::alloc(&mut machine, n).expect("fits");
    let mut gen = WorldGen::new(0xE2);
    gen.populate(&mut machine, &entities, 60.0).expect("fits");
    let table = gen
        .candidate_table(&mut machine, n, AiConfig::default().candidates)
        .expect("fits");
    (machine, entities, table)
}

fn frame_cycles(n: u32, schedule_offloaded: bool) -> (u64, u32) {
    let (mut machine, entities, table) = setup(n);
    let schedule = if schedule_offloaded {
        FrameSchedule::Offloaded { accel: 0 }
    } else {
        FrameSchedule::Sequential
    };
    let stats = run_frame(
        &mut machine,
        &entities,
        table,
        &AiConfig::default(),
        schedule,
    )
    .expect("frame runs");
    (stats.host_cycles, stats.pairs)
}

/// Runs E2.
pub fn run(quick: bool) -> Table {
    let sweeps: &[u32] = if quick {
        &[256]
    } else {
        &[256, 512, 1024, 2048]
    };
    let mut table = Table::new(
        "E2",
        "Frame schedule: sequential vs offloaded AI (Figure 2)",
        "the offload block runs calculateStrategy on the accelerator in parallel with host \
         detectCollisions (paper Fig. 2, Sec. 3)",
        vec![
            "entities",
            "pairs",
            "sequential frame",
            "offloaded frame",
            "speedup",
        ],
    );
    for &n in sweeps {
        let (seq, pairs_a) = frame_cycles(n, false);
        let (offl, pairs_b) = frame_cycles(n, true);
        assert_eq!(pairs_a, pairs_b, "schedules find identical collisions");
        table.push_row(vec![
            n.to_string(),
            pairs_a.to_string(),
            cycles(seq),
            cycles(offl),
            speedup(seq, offl),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_offloading_speeds_frames_up() {
        let (seq, _) = frame_cycles(512, false);
        let (offl, _) = frame_cycles(512, true);
        assert!(offl < seq, "offloaded {offl} vs sequential {seq}");
    }

    #[test]
    fn table_has_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.columns.len(), 5);
    }
}
