//! E12 — §4.2: software-cache lookup overhead vs repeated transfers.
//!
//! "Software cache lookup introduces some overhead, but this is
//! typically outweighed by the performance increase from avoiding
//! performing repeated accesses to data via inter-memory transfers."
//! This experiment sweeps the *reuse factor* — how many times each
//! datum is touched — and locates the crossover where the cache starts
//! winning. With no reuse and no spatial locality the cache is pure
//! overhead; with any repetition it wins rapidly.

use simcell::{Machine, MachineConfig, SimError};
use softcache::CacheConfig;

use crate::table::{cycles, speedup, Table};

/// One access per cache line (128-byte stride, matching the 4-way
/// cache's line size): no spatial locality, so the first pass gains
/// nothing from fetching whole lines.
pub const STRIDE: u32 = 128;
/// Lines touched (exactly fills the 16 KiB cache).
pub const LINES: u32 = 128;

/// `(naive cycles, cached cycles)` for `reuse` passes over the set.
pub fn measure(reuse: u32) -> (u64, u64) {
    let run = |cached: bool| -> u64 {
        let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
        let data = machine.alloc_main(LINES * STRIDE, 16).expect("fits");
        let handle = machine
            .offload(0)
            .spawn(|ctx| -> Result<(), SimError> {
                let mut cache = if cached {
                    Some(ctx.new_cache(CacheConfig::four_way_16k())?)
                } else {
                    None
                };
                let mut buf = [0u8; 16];
                for _ in 0..reuse {
                    for line in 0..LINES {
                        let addr = data.offset_by(line * STRIDE)?;
                        match &mut cache {
                            Some(c) => ctx.cached_read_bytes(c, addr, &mut buf)?,
                            None => ctx.outer_read_bytes(addr, &mut buf)?,
                        }
                        ctx.compute(8);
                    }
                }
                Ok(())
            })
            .expect("accel 0 exists");
        let elapsed = handle.elapsed();
        machine.join(handle).expect("runs");
        elapsed
    };
    (run(false), run(true))
}

/// The reuse factors E12 sweeps in quick/full mode.
pub fn reuse_factors(quick: bool) -> &'static [u32] {
    if quick {
        &[1, 4]
    } else {
        &[1, 2, 4, 8, 16]
    }
}

/// Captures the access trace (reads *and* per-access compute) of the
/// naive run for the cache-policy autotuner. The cached run issues the
/// identical access stream, so replaying this trace under any candidate
/// reproduces that candidate's measured cycles.
pub fn capture_trace(reuse: u32) -> Vec<softcache::AccessRecord> {
    let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
    machine.access_trace_mut().set_enabled(true);
    let data = machine.alloc_main(LINES * STRIDE, 16).expect("fits");
    let handle = machine
        .offload(0)
        .spawn(|ctx| -> Result<(), SimError> {
            let mut buf = [0u8; 16];
            for _ in 0..reuse {
                for line in 0..LINES {
                    ctx.outer_read_bytes(data.offset_by(line * STRIDE)?, &mut buf)?;
                    ctx.compute(8);
                }
            }
            Ok(())
        })
        .expect("accel 0 exists");
    machine.join(handle).expect("runs");
    machine.access_trace().records().to_vec()
}

/// Runs E12.
pub fn run(quick: bool) -> Table {
    let reuses: &[u32] = reuse_factors(quick);
    let mut table = Table::new(
        "E12",
        "Cache lookup overhead vs repeated inter-memory transfers (Sec. 4.2)",
        "cache lookup overhead is typically outweighed by avoided repeated transfers \
         (paper Sec. 4.2); with zero reuse and no spatial locality, it is not",
        vec![
            "reuse factor",
            "naive",
            "cached",
            "cached vs naive",
            "winner",
        ],
    );
    for &reuse in reuses {
        let (naive, cached) = measure(reuse);
        table.push_row(vec![
            reuse.to_string(),
            cycles(naive),
            cycles(cached),
            speedup(naive, cached),
            if cached < naive { "cache" } else { "naive" }.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_crossover_exists() {
        let (naive1, cached1) = measure(1);
        let (naive8, cached8) = measure(8);
        assert!(
            cached1 >= naive1,
            "no reuse: the cache is pure overhead ({cached1} vs {naive1})"
        );
        assert!(
            cached8 * 2 < naive8,
            "with reuse the cache wins big ({cached8} vs {naive8})"
        );
    }

    #[test]
    fn table_has_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 2);
    }
}
