//! E4 — §4.1: restructuring the abstract component system.
//!
//! The paper's key war story: offloading the monolithic component
//! system needed >100 virtual-function annotations for ~1300 virtual
//! calls per frame; one day of restructuring into 13 type-specialised
//! offloads cut the maximum annotation count to 40 and improved
//! performance on every target. This experiment runs both
//! architectures (plus the host baseline) over identical component
//! data.

use gamekit::{ComponentSystem, ComponentSystemStats};
use simcell::{Machine, MachineConfig};

use crate::table::{cycles, Table};

fn build(entities: u32) -> (Machine, ComponentSystem) {
    let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
    let system = ComponentSystem::build(&mut machine, entities, 0xE4).expect("fits");
    (machine, system)
}

/// Runs one layout over a fresh system and returns its stats.
pub fn measure(entities: u32, layout: &str) -> ComponentSystemStats {
    let (mut machine, system) = build(entities);
    let stats = match layout {
        "host" => system.update_host(&mut machine),
        "monolithic" => system.update_monolithic_offloaded(&mut machine, 0),
        "specialised" => system.update_specialised_offloaded(&mut machine, 0),
        other => unreachable!("unknown layout {other}"),
    }
    .expect("update succeeds");
    assert_eq!(machine.races_detected(), 0);
    stats
}

/// Runs E4.
pub fn run(quick: bool) -> Table {
    let entities = if quick { 20 } else { 100 };
    let mut table = Table::new(
        "E4",
        "Component-system restructuring (Sec. 4.1)",
        ">1300 virtual calls/frame needed >100 annotations in one offload; 13 type-specialised \
         offloads cap annotations at 40 and run faster on all targets (paper Sec. 4.1)",
        vec![
            "architecture",
            "offloads",
            "max domain size",
            "vcalls/frame",
            "frame cycles",
        ],
    );
    for layout in ["host", "monolithic", "specialised"] {
        let stats = measure(entities, layout);
        table.push_row(vec![
            layout.to_string(),
            stats.offloads.to_string(),
            stats.max_domain_size.to_string(),
            stats.vcalls.to_string(),
            cycles(stats.host_cycles),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_the_papers_counts_and_ordering() {
        let mono = measure(100, "monolithic");
        let spec = measure(100, "specialised");
        assert_eq!(mono.vcalls, 1300);
        assert_eq!(spec.vcalls, 1300);
        assert!(mono.max_domain_size > 100, "paper: >100 annotations");
        assert_eq!(
            spec.max_domain_size, 40,
            "paper: max 40 after restructuring"
        );
        assert_eq!(spec.offloads, 13, "paper: 13 type-specialised offloads");
        assert!(spec.host_cycles < mono.host_cycles);
    }

    #[test]
    fn table_has_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 3);
    }
}
