//! E15 (extension) — scheduling policies under skewed tile costs.
//!
//! E14's tiles are near-uniform, so the static block split is already
//! right. Real frames are not that kind: a few tiles are hot
//! (pathfinding-heavy regions, crowded cells), and a static split
//! strands every hot tile on whichever accelerators happened to own
//! that block while the rest sit idle. This experiment skews the E14
//! frame — the first quarter of the tiles carry heavy extra strategy
//! work — and dispatches it under all three `offload_rt::sched`
//! policies. Work stealing recovers most of the cycles the static
//! assignment loses (the acceptance bar is ≥ 20%), pays for it in
//! explicitly-accounted steal cycles, and produces a bit-identical
//! world: scheduling moves work, never results.

use gamekit::{ai_frame_sched, AiConfig, EntityArray, GameEntity, WorldGen};
use offload_rt::sched::{SchedPolicy, SchedReport};
use simcell::{Machine, MachineConfig};

use crate::table::{cycles, speedup, Table};

/// Accelerator lanes the dispatch uses.
pub const ACCELS: u16 = 6;
/// Tiles the frame is cut into (finer than the lanes, so queues have
/// depth and stealing has something to move).
pub const TILES: u32 = 24;
/// Extra strategy cycles charged to each hot tile.
pub const HOT_EXTRA: u64 = 150_000;

/// Per-tile extra cost vector: the first quarter of the tiles are hot.
pub fn skewed_costs() -> Vec<u64> {
    (0..TILES)
        .map(|t| if t < TILES / 4 { HOT_EXTRA } else { 0 })
        .collect()
}

/// Runs one skewed frame under `policy`; returns the scheduler report
/// and the resulting world snapshot.
pub fn measure(n: u32, policy: SchedPolicy) -> (SchedReport, Vec<GameEntity>) {
    let config = AiConfig::default();
    let mut machine = Machine::new(MachineConfig::default()).expect("config valid");
    let entities = EntityArray::alloc(&mut machine, n).expect("fits");
    let mut gen = WorldGen::new(0xE15);
    gen.populate(&mut machine, &entities, 70.0).expect("fits");
    let table = gen
        .candidate_table(&mut machine, n, config.candidates)
        .expect("fits");
    let report = ai_frame_sched(
        &mut machine,
        &entities,
        table,
        &config,
        ACCELS,
        TILES,
        policy,
        &skewed_costs(),
    )
    .expect("tiles fit");
    assert_eq!(machine.races_detected(), 0);
    let world = entities.snapshot(&machine).expect("snapshot reads");
    (report, world)
}

/// Runs E15.
pub fn run(quick: bool) -> Table {
    let n = if quick { 512 } else { 1024 };
    let mut table = Table::new(
        "E15",
        "Extension: scheduling policies under skewed tile costs",
        "a static split strands hot tiles on a few accelerators; work stealing recovers most \
         of the lost cycles for an explicitly-accounted steal cost, with a bit-identical \
         world (paper Sec. 1 context: 'it is important to partition the work well')",
        vec![
            "policy",
            "frame AI cycles",
            "vs static",
            "steals",
            "steal cycles",
            "imbalance",
        ],
    );
    let (static_report, static_world) = measure(n, SchedPolicy::Static);
    for policy in [
        SchedPolicy::Static,
        SchedPolicy::ShortestQueue,
        SchedPolicy::WorkStealing,
    ] {
        let (report, world) = measure(n, policy);
        assert_eq!(
            world,
            static_world,
            "{}: scheduling must move work, never results",
            policy.name()
        );
        table.push_row(vec![
            policy.name().to_string(),
            cycles(report.cycles),
            speedup(static_report.cycles, report.cycles),
            report.steals.to_string(),
            cycles(report.steal_cycles),
            format!("{:.2}", report.imbalance()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_stealing_recovers_at_least_20_percent_over_static() {
        for n in [512u32, 1024] {
            let (st, st_world) = measure(n, SchedPolicy::Static);
            let (ws, ws_world) = measure(n, SchedPolicy::WorkStealing);
            assert_eq!(ws_world, st_world, "identical world state");
            assert!(ws.steals > 0, "the skew must trigger steals");
            assert!(
                ws.cycles * 5 <= st.cycles * 4,
                "n={n}: work stealing must recover >= 20%: {} vs {}",
                ws.cycles,
                st.cycles
            );
            assert!(
                ws.imbalance() < st.imbalance(),
                "stealing must flatten the lanes: {:.2} vs {:.2}",
                ws.imbalance(),
                st.imbalance()
            );
        }
    }

    #[test]
    fn shortest_queue_also_beats_static_here() {
        // Greedy placement cannot split a queue after the fact, but on
        // this skew even placing tiles one-by-one beats the block
        // split.
        let (st, _) = measure(512, SchedPolicy::Static);
        let (sq, _) = measure(512, SchedPolicy::ShortestQueue);
        assert!(sq.cycles < st.cycles, "{} vs {}", sq.cycles, st.cycles);
    }

    #[test]
    fn table_has_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.columns.len(), 6);
        assert!(t.rows[2][0] == "work-stealing");
    }
}
