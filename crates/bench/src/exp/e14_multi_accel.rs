//! E14 (extension) — scaling one frame task across accelerators.
//!
//! The paper's machine (the PS3's Cell) exposes six usable SPEs; its
//! Figure 2 loop uses one. This ablation tiles the AI strategy task
//! across 1–6 accelerators (each tile bulk-fetches the read-only
//! entity array and writes back its own slice) and reports the scaling
//! curve, whose knee shows where the shared transfer work stops
//! amortising. Each row runs all three `offload_rt::sched` policies:
//! with one near-uniform tile per accelerator there is nothing to
//! rebalance, so shortest-queue assigns the same tiles and
//! work-stealing finds no profitable steal — all three columns are
//! bit-identical, which is exactly the "scheduling costs nothing when
//! the split is already right" baseline E15 then breaks.

use gamekit::{ai_frame_offloaded_tiled, ai_frame_sched, AiConfig, EntityArray, WorldGen};
use offload_rt::sched::SchedPolicy;
use simcell::{Machine, MachineConfig};

use crate::table::{cycles, speedup, Table};

/// Host cycles for one tiled AI frame over `n` entities on `accels`
/// accelerators (static split, one tile per accelerator).
pub fn measure(n: u32, accels: u16) -> u64 {
    let config = AiConfig::default();
    let mut machine = Machine::new(MachineConfig::default()).expect("config valid");
    let entities = EntityArray::alloc(&mut machine, n).expect("fits");
    let mut gen = WorldGen::new(0xE14);
    gen.populate(&mut machine, &entities, 70.0).expect("fits");
    let table = gen
        .candidate_table(&mut machine, n, config.candidates)
        .expect("fits");
    let cycles = ai_frame_offloaded_tiled(&mut machine, &entities, table, &config, accels)
        .expect("tiles fit");
    assert_eq!(machine.races_detected(), 0);
    cycles
}

/// Host cycles for the same frame dispatched under `policy` (still one
/// tile per accelerator).
pub fn measure_policy(n: u32, accels: u16, policy: SchedPolicy) -> u64 {
    let config = AiConfig::default();
    let mut machine = Machine::new(MachineConfig::default()).expect("config valid");
    let entities = EntityArray::alloc(&mut machine, n).expect("fits");
    let mut gen = WorldGen::new(0xE14);
    gen.populate(&mut machine, &entities, 70.0).expect("fits");
    let table = gen
        .candidate_table(&mut machine, n, config.candidates)
        .expect("fits");
    let report = ai_frame_sched(
        &mut machine,
        &entities,
        table,
        &config,
        accels,
        u32::from(accels),
        policy,
        &[],
    )
    .expect("tiles fit");
    assert_eq!(machine.races_detected(), 0);
    report.cycles
}

/// Runs E14.
pub fn run(quick: bool) -> Table {
    // 1024 entities: the single-tile case must fit entity array +
    // candidate slice + output copy in one 256 KiB local store.
    let n = if quick { 512 } else { 1024 };
    let mut table = Table::new(
        "E14",
        "Extension: tiling the AI task across accelerators",
        "the Cell exposes six usable accelerators; data-parallel tiling of a frame task scales \
         until the replicated bulk fetch of shared data dominates, and on near-uniform tiles \
         every scheduling policy agrees bit for bit (paper Sec. 1, 4.1 context)",
        vec![
            "accelerators",
            "frame AI cycles",
            "shortest-queue",
            "work-stealing",
            "speedup vs 1",
            "efficiency",
        ],
    );
    let base = measure(n, 1);
    for accels in 1u16..=6 {
        let t = measure(n, accels);
        let sq = measure_policy(n, accels, SchedPolicy::ShortestQueue);
        let ws = measure_policy(n, accels, SchedPolicy::WorkStealing);
        let s = base as f64 / t as f64;
        table.push_row(vec![
            accels.to_string(),
            cycles(t),
            cycles(sq),
            cycles(ws),
            speedup(base, t),
            format!("{:.0}%", 100.0 * s / f64::from(accels)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_scaling_is_real_but_sublinear() {
        let one = measure(1024, 1);
        let two = measure(1024, 2);
        let six = measure(1024, 6);
        assert!(two < one, "2 accels beat 1: {two} vs {one}");
        assert!(six < two, "6 accels beat 2: {six} vs {two}");
        let s6 = one as f64 / six as f64;
        assert!(
            s6 < 6.0,
            "the replicated bulk fetch makes scaling sublinear: {s6:.2}x"
        );
        assert!(s6 > 1.8, "but it should still scale usefully: {s6:.2}x");
    }

    #[test]
    fn all_policies_agree_on_uniform_tiles() {
        for accels in [2u16, 6] {
            let st = measure(512, accels);
            assert_eq!(
                st,
                measure_policy(512, accels, SchedPolicy::Static),
                "the scheduler's static path must be the hand-rolled split"
            );
            assert_eq!(
                st,
                measure_policy(512, accels, SchedPolicy::WorkStealing),
                "no profitable steal exists on one uniform tile per accel"
            );
            assert_eq!(
                st,
                measure_policy(512, accels, SchedPolicy::ShortestQueue),
                "greedy assignment lands on the same one-per-accel split"
            );
        }
    }

    #[test]
    fn table_has_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.columns.len(), 6);
    }
}
