//! E18 (extension) — irregular graph traversal and the gather API.
//!
//! Everything before this experiment streams: dense arrays, known
//! strides, transfers plannable before the kernel runs. Game state is
//! not all like that — interaction graphs (aggro, squads, level
//! connectivity) make the *data* decide the next addresses, and the
//! paper's explicit-transfer machine has no hardware to hide that
//! (Sec. 3.2: every remote touch is a programmed DMA). This experiment
//! traverses one seeded entity-interaction graph (BFS levels from node
//! 0, then connected components) three ways and demands a bit-identical
//! memory image from all of them:
//!
//! - **naive**: one synchronous outer read per row offset and per edge
//!   — the pointer-chasing worst case;
//! - **tuned**: the same per-element loop behind the autotuned software
//!   cache, where the tuner runs with reuse-distance pruning
//!   ([`softcache::TuneOptions::reuse_prune`]) because the captured
//!   trace has no dominant stride to prefetch along;
//! - **gather**: per BFS level, one coalesced
//!   [`GatherPlan`](simcell::GatherPlan) batch for the frontier's
//!   row-offset pairs and one for its neighbour runs
//!   ([`gamekit::graph`]).
//!
//! The acceptance budget: batched frontier gathering beats naive by at
//! least 2x in simulated accelerator cycles, and the tuned column lands
//! between them — caching recovers spatial locality inside neighbour
//! lists, but still pays a round trip per missed line where the gather
//! engine pays one descriptor per *run*.

use gamekit::graph::{run_bfs, run_components, GraphAccess, InteractionGraph};
use simcell::{Machine, MachineConfig};
use softcache::{autotune, CacheChoice, TuneOptions};

use crate::table::{cycles, speedup, Table};

/// Graph scale: nodes and target average degree.
fn scale(quick: bool) -> (u32, u32) {
    if quick {
        (512, 6)
    } else {
        (2048, 8)
    }
}

/// BFS source node (fixed across variants).
const SOURCE: u32 = 0;

/// Seed for the interaction graph.
const SEED: u64 = 0xE18;

/// A fresh machine with the seeded graph and an output array for the
/// traversal results.
fn world(quick: bool) -> (Machine, InteractionGraph, memspace::Addr) {
    let (nodes, degree) = scale(quick);
    let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
    let graph = InteractionGraph::generate(&mut machine, nodes, degree, SEED).expect("fits");
    let out = machine.alloc_main_slice::<u32>(2 * nodes).expect("fits");
    (machine, graph, out)
}

/// Runs BFS + connected components under `access` on a fresh world and
/// returns `(accel cycles, memory hash, gather plans issued)`.
pub fn measure(quick: bool, access: &GraphAccess) -> (u64, u64, u64) {
    let (mut machine, graph, out) = world(quick);
    let nodes = graph.nodes();
    let comp_out = out.element(nodes, 4).expect("in range");
    machine.reset_stats();
    run_bfs(&mut machine, &graph, SOURCE, out, access).expect("traversal fits");
    run_components(&mut machine, &graph, comp_out, access).expect("traversal fits");
    (
        machine.stats().accel_busy_cycles,
        machine.memory_hash(),
        machine.stats().gathers,
    )
}

/// Captures the naive traversal's access trace and autotunes a cache
/// for it, with reuse-distance pruning enabled (the trace is
/// irregular). Returns the winning choice.
pub fn tune(quick: bool) -> CacheChoice {
    let (mut machine, graph, out) = world(quick);
    let nodes = graph.nodes();
    let comp_out = out.element(nodes, 4).expect("in range");
    machine.access_trace_mut().set_enabled(true);
    run_bfs(&mut machine, &graph, SOURCE, out, &GraphAccess::Naive).expect("traversal fits");
    run_components(&mut machine, &graph, comp_out, &GraphAccess::Naive).expect("traversal fits");
    let opts = TuneOptions {
        reuse_prune: true,
        ..TuneOptions::default()
    };
    let records = machine.access_trace().records().to_vec();
    autotune(&records, &opts)
        .expect("search space is valid")
        .winner()
        .choice
}

/// Runs E18.
pub fn run(quick: bool) -> Table {
    let (nodes, degree) = scale(quick);
    let mut table = Table::new(
        "E18",
        "Extension: irregular graph traversal — naive derefs vs cache vs gather",
        "data-dependent access defeats planned streaming; a first-class gather (index list -> \
         coalesced DMA descriptor batch) restores bulk transfer to frontier expansion and beats \
         per-edge remote derefs by >=2x, with the autotuned software cache in between \
         (paper Sec. 3.2 explicit transfers, Sec. 4.2 software caches)",
        vec![
            "access path",
            "traversal cycles",
            "speedup vs naive",
            "gather plans",
            "configuration",
        ],
    );
    let (naive, naive_hash, _) = measure(quick, &GraphAccess::Naive);
    let choice = tune(quick);
    let tuned_access = GraphAccess::Tuned(choice);
    let (tuned, tuned_hash, _) = measure(quick, &tuned_access);
    let (gather, gather_hash, plans) = measure(quick, &GraphAccess::Gather);
    assert_eq!(naive_hash, tuned_hash, "tuned must not change the world");
    assert_eq!(naive_hash, gather_hash, "gather must not change the world");
    assert!(
        gather * 2 <= naive,
        "acceptance budget: gather {gather} must be >=2x cheaper than naive {naive}"
    );
    assert!(
        gather <= tuned && tuned <= naive,
        "the tuned cache lands between: naive {naive}, tuned {tuned}, gather {gather}"
    );
    let desc = format!("{nodes} nodes, avg degree {degree}");
    table.push_row(vec![
        "naive per-edge derefs".into(),
        cycles(naive),
        speedup(naive, naive),
        "0".into(),
        desc.clone(),
    ]);
    table.push_row(vec![
        "autotuned softcache".into(),
        cycles(tuned),
        speedup(naive, tuned),
        "0".into(),
        choice.to_string(),
    ]);
    table.push_row(vec![
        "batched frontier gather".into(),
        cycles(gather),
        speedup(naive, gather),
        plans.to_string(),
        desc,
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_wins_by_the_budgeted_margin_and_hashes_agree() {
        let (naive, naive_hash, _) = measure(true, &GraphAccess::Naive);
        let (gather, gather_hash, plans) = measure(true, &GraphAccess::Gather);
        assert_eq!(naive_hash, gather_hash, "bit-identical memory required");
        assert!(plans > 0, "the gather variant must use the gather engine");
        assert!(
            gather * 2 <= naive,
            "the acceptance budget is 2x: gather {gather} vs naive {naive}"
        );
    }

    #[test]
    fn tuned_lands_between_naive_and_gather() {
        let (naive, naive_hash, _) = measure(true, &GraphAccess::Naive);
        let choice = tune(true);
        let (tuned, tuned_hash, _) = measure(true, &GraphAccess::Tuned(choice));
        let (gather, _, _) = measure(true, &GraphAccess::Gather);
        assert_eq!(naive_hash, tuned_hash, "bit-identical memory required");
        assert!(
            gather <= tuned && tuned < naive,
            "expected gather {gather} <= tuned {tuned} < naive {naive}"
        );
    }

    #[test]
    fn table_has_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.columns.len(), 5);
    }
}
