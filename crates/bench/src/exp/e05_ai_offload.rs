//! E5 — §4.1: offloading the AI task.
//!
//! "It took 1 developer 2 months to offload the very complex existing
//! AI code of a AAA game to SPU, with ~200 lines of additional code
//! resulting in a ~50% performance increase." The port's *code* delta
//! here is exactly the accessor plumbing in
//! [`gamekit::ai_frame_offloaded`]; this experiment measures the
//! performance delta.

use gamekit::{ai_frame_host, ai_frame_offloaded, AiConfig, EntityArray, WorldGen};
use memspace::Addr;
use simcell::{Machine, MachineConfig};

use crate::table::{cycles, speedup, Table};

fn setup(n: u32) -> (Machine, EntityArray, Addr) {
    let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
    let entities = EntityArray::alloc(&mut machine, n).expect("fits");
    let mut gen = WorldGen::new(0xE5);
    gen.populate(&mut machine, &entities, 70.0).expect("fits");
    let table = gen
        .candidate_table(&mut machine, n, AiConfig::default().candidates)
        .expect("fits");
    (machine, entities, table)
}

/// `(host cycles, offloaded cycles)` for one AI frame over `n` entities.
pub fn measure(n: u32) -> (u64, u64) {
    let config = AiConfig::default();
    let (mut m1, e1, t1) = setup(n);
    let t0 = m1.host_now();
    ai_frame_host(&mut m1, &e1, t1, &config).expect("host AI runs");
    let host = m1.host_now() - t0;

    let (mut m2, e2, t2) = setup(n);
    let handle = m2
        .offload(0)
        .spawn(|ctx| ai_frame_offloaded(ctx, &e2, t2, &config))
        .expect("accel 0 exists");
    let offloaded = handle.elapsed();
    m2.join(handle).expect("offloaded AI runs");
    (host, offloaded)
}

/// Runs E5.
pub fn run(quick: bool) -> Table {
    let sweeps: &[u32] = if quick {
        &[256]
    } else {
        &[256, 512, 1024, 2048]
    };
    let mut table = Table::new(
        "E5",
        "Offloading the AI strategy task (Sec. 4.1)",
        "porting complex AI to the accelerator with accessor-based data movement gave a ~50% \
         performance increase for ~200 additional lines (paper Sec. 4.1)",
        vec!["entities", "host AI (cyc)", "offloaded AI (cyc)", "speedup"],
    );
    for &n in sweeps {
        let (host, offloaded) = measure(n);
        table.push_row(vec![
            n.to_string(),
            cycles(host),
            cycles(offloaded),
            speedup(host, offloaded),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_speedup_is_in_the_papers_ballpark() {
        let (host, offloaded) = measure(1024);
        let s = host as f64 / offloaded as f64;
        assert!(
            (1.2..4.0).contains(&s),
            "paper reports ~1.5x; measured {s:.2}x"
        );
    }

    #[test]
    fn table_has_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.columns.len(), 4);
    }
}
