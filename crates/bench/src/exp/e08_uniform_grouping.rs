//! E8 — §4.1: uniform-type grouping enables prefetch + double
//! buffering.
//!
//! "Processing objects in groups of uniform type permits prefetching
//! and double buffered transfers, for further performance increases."
//! Three schedules over the same per-entity update: per-object
//! synchronous access (what mixed types force), single-buffered chunks,
//! and double-buffered streaming.

use gamekit::{EntityArray, GameEntity, WorldGen};
use offload_rt::{process_chunked, process_stream, StreamConfig};
use simcell::{Machine, MachineConfig, SimError};

use crate::table::{cycles, speedup, Table};

/// Compute per entity update.
const UPDATE_COMPUTE: u64 = 80;

fn update(e: &mut GameEntity) {
    e.pos = e.pos.add(e.vel.scale(1.0 / 60.0));
    e.vel = e.vel.scale(0.998);
}

fn setup(n: u32) -> (Machine, EntityArray) {
    let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
    let entities = EntityArray::alloc(&mut machine, n).expect("fits");
    WorldGen::new(0xE8)
        .populate(&mut machine, &entities, 50.0)
        .expect("fits");
    (machine, entities)
}

/// `(per-object, chunked, double-buffered)` accelerator cycles.
pub fn measure(n: u32) -> (u64, u64, u64) {
    let per_object = {
        let (mut machine, entities) = setup(n);
        let handle = machine
            .offload(0)
            .spawn(|ctx| -> Result<(), SimError> {
                for i in 0..n {
                    let addr = entities.addr_of(i)?;
                    let mut e: GameEntity = ctx.outer_read_pod(addr)?;
                    update(&mut e);
                    ctx.compute(UPDATE_COMPUTE);
                    ctx.outer_write_pod(addr, &e)?;
                }
                Ok(())
            })
            .expect("accel 0 exists");
        let t = handle.elapsed();
        machine.join(handle).expect("runs");
        t
    };
    let config = StreamConfig {
        chunk_elems: 64,
        write_back: true,
    };
    let worker = |ctx: &mut simcell::AccelCtx<'_>, _: u32, chunk: &mut [GameEntity]| {
        for e in chunk.iter_mut() {
            update(e);
        }
        ctx.compute(UPDATE_COMPUTE * chunk.len() as u64);
        Ok(())
    };
    let chunked = {
        let (mut machine, entities) = setup(n);
        let handle = machine
            .offload(0)
            .spawn(|ctx| process_chunked::<GameEntity, _>(ctx, entities.base(), n, config, worker))
            .expect("accel 0 exists");
        let t = handle.elapsed();
        machine.join(handle).expect("runs");
        t
    };
    let streamed = {
        let (mut machine, entities) = setup(n);
        let handle = machine
            .offload(0)
            .spawn(|ctx| process_stream::<GameEntity, _>(ctx, entities.base(), n, config, worker))
            .expect("accel 0 exists");
        let t = handle.elapsed();
        machine.join(handle).expect("runs");
        assert_eq!(machine.races_detected(), 0);
        t
    };
    (per_object, chunked, streamed)
}

/// Runs E8.
pub fn run(quick: bool) -> Table {
    let sweeps: &[u32] = if quick { &[256] } else { &[256, 1024, 4096] };
    let mut table = Table::new(
        "E8",
        "Uniform-type grouping, prefetch and double buffering (Sec. 4.1)",
        "uniform type ⇒ known size ⇒ bulk prefetch and double-buffered transfers; mixed types \
         force per-object synchronous access (paper Sec. 4.1)",
        vec![
            "entities",
            "per-object (mixed)",
            "chunked (grouped)",
            "double-buffered",
            "group vs mixed",
            "double-buffer bonus",
        ],
    );
    for &n in sweeps {
        let (object, chunked, streamed) = measure(n);
        table.push_row(vec![
            n.to_string(),
            cycles(object),
            cycles(chunked),
            cycles(streamed),
            speedup(object, chunked),
            speedup(chunked, streamed),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_grouping_then_double_buffering_each_win() {
        let (object, chunked, streamed) = measure(1024);
        assert!(
            chunked < object / 2,
            "bulk chunks win big: {chunked} vs {object}"
        );
        assert!(
            streamed < chunked,
            "double buffering adds more: {streamed} vs {chunked}"
        );
    }

    #[test]
    fn table_has_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.columns.len(), 6);
    }
}
