//! E9 — §5: indexed (word) addressing.
//!
//! The hybrid pointer discipline compiles constant sub-word offsets
//! efficiently and *statically rejects* variable byte pointers; the
//! byte-emulation alternative accepts everything but pays shifts and
//! masks on every dereference. This experiment reproduces both halves:
//! the accept/reject table and the emulation tax.

use offload_lang::{compile, ErrorKind, Target, Vm, WordStrategy};
use simcell::{Machine, MachineConfig};

use crate::table::{cycles, speedup, Table};

/// The compile-corpus: `(name, source, hybrid verdict)`.
pub fn corpus() -> Vec<(&'static str, &'static str, bool)> {
    vec![
        (
            "struct char fields (p.a = p.b)",
            r#"
            struct T { a: char; b: char; c: char; d: char; }
            var t: T;
            fn main() -> int {
                t.b = 42;
                let p: T* = &t;
                p.a = p.b;
                return t.a;
            }
            "#,
            true,
        ),
        (
            "word-stride array loop",
            r#"
            var a: [int; 32];
            fn main() -> int {
                let i: int = 0;
                while i < 32 { a[i] = i; i = i + 1; }
                return a[31];
            }
            "#,
            true,
        ),
        (
            "char* q = p + 4 (whole word)",
            r#"
            var s: [char; 16];
            fn main() -> int {
                let p: char* = &s[0];
                let q: char* = p + 4;
                *q = 7;
                return s[4];
            }
            "#,
            true,
        ),
        (
            "char byte* q = p + 1",
            r#"
            var s: [char; 16];
            fn main() -> int {
                let p: char* = &s[0];
                let q: char byte* = p + 1;
                *q = 9;
                return s[1];
            }
            "#,
            true,
        ),
        (
            "char* q = p + 1",
            r#"
            var s: [char; 16];
            fn main() -> int {
                let p: char* = &s[0];
                let q: char* = p + 1;
                return 0;
            }
            "#,
            false,
        ),
        (
            "string store loop (s[i] = c)",
            r#"
            var s: [char; 32];
            fn main() -> int {
                let i: int = 0;
                while i < 32 { s[i] = 65; i = i + 1; }
                return s[31];
            }
            "#,
            false,
        ),
        (
            "p + variable (char stride)",
            r#"
            var s: [char; 32];
            fn main() -> int {
                let x: int = 3;
                let p: char* = &s[0];
                let q: char byte* = p + x;
                return 0;
            }
            "#,
            false,
        ),
    ]
}

/// The runnable timing program (word-legal under byte emulation).
const TIMING: &str = r#"
    var s: [char; 128];
    var sum: int;
    fn main() -> int {
        let i: int = 0;
        while i < 128 {
            s[i] = i;
            i = i + 1;
        }
        i = 0;
        while i < 128 {
            sum = sum + s[i];
            i = i + 1;
        }
        return sum;
    }
"#;

fn timed(target: &Target) -> u64 {
    let program = compile(TIMING, target).expect("timing program compiles");
    let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
    let mut vm = Vm::new(&program, &mut machine).expect("fits");
    let exit = vm.run(&mut machine).expect("runs");
    assert_eq!(exit, 8128);
    machine.host_now()
}

/// `(byte-native cycles, byte-emulated-on-word-target cycles)`.
pub fn emulation_tax() -> (u64, u64) {
    let native = timed(&Target::cell_like());
    let emulated = timed(&Target::word_addressed(4).with_strategy(WordStrategy::ByteEmulate));
    (native, emulated)
}

/// Runs E9.
pub fn run(_quick: bool) -> Table {
    let target = Target::word_addressed(4);
    let mut table = Table::new(
        "E9",
        "Word addressing: the hybrid pointer discipline (Sec. 5)",
        "constant sub-word offsets compile efficiently; variable byte-pointers are a static \
         error; full byte emulation costs shifts/masks per dereference (paper Sec. 5)",
        vec!["program", "hybrid verdict", "expected", "error class"],
    );
    for (name, source, expect_ok) in corpus() {
        let result = compile(source, &target);
        let (verdict, class) = match &result {
            Ok(_) => ("accepted".to_string(), "-".to_string()),
            Err(e) => ("rejected".to_string(), format!("{:?}", e.kind)),
        };
        assert_eq!(result.is_ok(), expect_ok, "verdict flipped for {name}");
        if let Err(e) = &result {
            assert_eq!(e.kind, ErrorKind::WordAddressing, "wrong class for {name}");
        }
        table.push_row(vec![
            name.to_string(),
            verdict,
            if expect_ok { "accepted" } else { "rejected" }.to_string(),
            class,
        ]);
    }
    let (native, emulated) = emulation_tax();
    table.push_row(vec![
        "char-sum loop, byte-native vs byte-emulated".to_string(),
        format!("{} vs {} cycles", cycles(native), cycles(emulated)),
        "emulation pays".to_string(),
        format!("tax {}", speedup(emulated, native)),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_hybrid_verdicts_match_the_paper() {
        let target = Target::word_addressed(4);
        for (name, source, expect_ok) in corpus() {
            assert_eq!(
                compile(source, &target).is_ok(),
                expect_ok,
                "verdict for {name}"
            );
        }
    }

    #[test]
    fn shape_byte_emulation_is_slower() {
        let (native, emulated) = emulation_tax();
        assert!(emulated > native);
    }

    #[test]
    fn table_has_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), corpus().len() + 1);
    }
}
