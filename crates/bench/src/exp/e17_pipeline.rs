//! E17 (extension) — streaming the staged frame through a pipeline.
//!
//! The scheduler experiments (E14/E15) fan *independent* tiles out;
//! real frames also contain *dependent* stage chains — skin, then
//! collide, then resolve the same entities. This experiment runs that
//! chain three ways over the same seeded world and asserts the worlds
//! come out bit-identical:
//!
//! - **sequential**: one offload per stage on a single accelerator,
//!   each stage streaming the whole array before the next starts;
//! - **pipeline**: `machine.pipeline()` — stage `k` on accelerator
//!   `k`, chunks flowing through bounded queues, stage `k` computing
//!   chunk `i` while stage `k-1` computes chunk `i+1` (the FastFlow
//!   self-offloading shape, arXiv 1002.4668);
//! - **fan-out**: each stage block-split over *all six* accelerators
//!   with a full join barrier between stages.
//!
//! The pipeline's win over sequential is pure overlap (same memory
//! image, ≥1.3x fewer cycles on three accelerators); the barriered
//! fan-out buys more with six lanes but pays a barrier per stage and
//! needs every lane idle and available — the table shows all three so
//! the trade reads off directly.

use gamekit::{
    staged_frame_fanout, staged_frame_pipeline, staged_frame_sequential, EntityArray, WorldGen,
};
use simcell::{Machine, MachineConfig};

use crate::table::{cycles, speedup, Table};

/// Elements per pipeline chunk (entities handed stage to stage).
const CHUNK: u32 = 64;

/// Seeded world shared by every variant.
fn world(n: u32) -> (Machine, EntityArray) {
    let mut machine = Machine::new(MachineConfig::default()).expect("config valid");
    let entities = EntityArray::alloc(&mut machine, n).expect("fits");
    WorldGen::new(0xE17)
        .populate(&mut machine, &entities, 100.0)
        .expect("fits");
    (machine, entities)
}

/// Host cycles for the sequential stage-by-stage frame, plus the
/// world's memory hash afterwards.
pub fn measure_sequential(n: u32) -> (u64, u64) {
    let (mut machine, entities) = world(n);
    let t = staged_frame_sequential(&mut machine, &entities, CHUNK).expect("fits");
    assert_eq!(machine.races_detected(), 0);
    (t, machine.memory_hash())
}

/// Host cycles for the pipelined frame with queues `buffers` deep,
/// plus the memory hash and the charged stall cycles
/// `(input_wait, backpressure)`.
pub fn measure_pipeline(n: u32, buffers: u32) -> (u64, u64, (u64, u64)) {
    let (mut machine, entities) = world(n);
    let report = staged_frame_pipeline(&mut machine, &entities, CHUNK, buffers).expect("fits");
    assert_eq!(machine.races_detected(), 0);
    (
        report.cycles,
        machine.memory_hash(),
        (report.input_wait_cycles, report.backpressure_cycles),
    )
}

/// Host cycles for the barriered all-lanes fan-out, plus the memory
/// hash.
pub fn measure_fanout(n: u32) -> (u64, u64) {
    let (mut machine, entities) = world(n);
    let (t, _) = staged_frame_fanout(&mut machine, &entities, CHUNK).expect("fits");
    assert_eq!(machine.races_detected(), 0);
    (t, machine.memory_hash())
}

/// Runs E17.
pub fn run(quick: bool) -> Table {
    let n = if quick { 512 } else { 1024 };
    let mut table = Table::new(
        "E17",
        "Extension: pipelining dependent frame stages across accelerators",
        "dependent stages (skin -> collide -> resolve) cannot fan out without barriers; a \
         bounded-queue pipeline overlaps stage k's compute with stage k+1's fetch and beats the \
         sequential chain by >=1.3x in simulated cycles while producing the bit-identical world \
         (FastFlow self-offloading, arXiv 1002.4668; paper Sec. 4.1 streaming context)",
        vec![
            "schedule",
            "accels",
            "frame cycles",
            "speedup vs sequential",
            "input-wait cycles",
            "backpressure cycles",
        ],
    );
    let (seq, seq_hash) = measure_sequential(n);
    let (fan, fan_hash) = measure_fanout(n);
    assert_eq!(seq_hash, fan_hash, "fan-out must not change the world");
    table.push_row(vec![
        "sequential (1 accel)".into(),
        "1".into(),
        cycles(seq),
        speedup(seq, seq),
        "0".into(),
        "0".into(),
    ]);
    for buffers in [1u32, 2, 4] {
        let (pipe, pipe_hash, (wait, bp)) = measure_pipeline(n, buffers);
        assert_eq!(
            seq_hash, pipe_hash,
            "the pipeline must not change the world"
        );
        table.push_row(vec![
            format!("pipeline, {buffers}-deep queues"),
            "3".into(),
            cycles(pipe),
            speedup(seq, pipe),
            wait.to_string(),
            bp.to_string(),
        ]);
    }
    table.push_row(vec![
        "fan-out + barriers".into(),
        "6".into(),
        cycles(fan),
        speedup(seq, fan),
        "0".into(),
        "0".into(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_wins_by_the_budgeted_margin() {
        let (seq, seq_hash) = measure_sequential(1024);
        let (pipe, pipe_hash, _) = measure_pipeline(1024, 2);
        assert_eq!(seq_hash, pipe_hash, "bit-identical world required");
        assert!(
            (pipe as f64) * 1.3 <= seq as f64,
            "the acceptance budget is 1.3x: pipeline {pipe} vs sequential {seq}"
        );
    }

    #[test]
    fn deeper_queues_never_lose() {
        let (one, _, _) = measure_pipeline(512, 1);
        let (four, _, _) = measure_pipeline(512, 4);
        assert!(
            four <= one,
            "deeper queues can only relax stalls: {four} vs {one}"
        );
    }

    #[test]
    fn table_has_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.columns.len(), 6);
    }
}
