//! E3 — Figure 3: the cost of outer/inner-domain virtual dispatch.
//!
//! Measures one accelerator-side virtual dispatch as the offload's
//! domain annotation grows, for receivers in local store and in outer
//! memory, against the host's plain vtable dispatch. The linear domain
//! search is visible but small next to the outer header read — the
//! reason the paper can afford the scheme.

use offload_rt::{
    accel_virtual_dispatch, host_virtual_dispatch, ClassRegistry, Domain, DuplicateId, MethodSlot,
};
use simcell::{Machine, MachineConfig};

use crate::table::{speedup, Table};

const DISPATCHES: u32 = 200;

struct Rig {
    registry: ClassRegistry,
    domain: Domain,
    /// Class whose method sits at the END of the domain (worst case).
    class: offload_rt::ClassId,
}

/// Builds a registry with `n` classes, each with one virtual method,
/// all annotated into one domain (in registration order).
fn rig(n: usize) -> Rig {
    let mut registry = ClassRegistry::new();
    let mut domain = Domain::new();
    let mut last = None;
    for i in 0..n {
        let global = registry.fresh_fn(format!("C{i}::update"));
        let local = registry.fresh_fn(format!("C{i}::update [spu]"));
        let class = registry.register_class(format!("C{i}"), None);
        registry.define_method(class, MethodSlot(0), global);
        domain.add(
            global,
            &[(DuplicateId::ALL_LOCAL, local), (DuplicateId(1), local)],
        );
        last = Some(class);
    }
    Rig {
        registry,
        domain,
        class: last.expect("n >= 1"),
    }
}

/// Cycles for one dispatch of the worst-case (last) domain entry, with
/// the receiver local or outer.
fn dispatch_cycles(n: usize, receiver_local: bool) -> u64 {
    let r = rig(n);
    let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
    let outer_obj = machine.alloc_main(64, 16).expect("fits");
    machine
        .main_mut()
        .write_pod(outer_obj, &r.class.0)
        .expect("fits");

    let handle = machine
        .offload(0)
        .spawn(|ctx| {
            let obj = if receiver_local {
                let local = ctx.alloc_local(64, 16)?;
                ctx.local_write_pod(local, &r.class.0)?;
                local
            } else {
                outer_obj
            };
            let dup = if receiver_local {
                DuplicateId::ALL_LOCAL
            } else {
                DuplicateId(1)
            };
            let t0 = ctx.now();
            for _ in 0..DISPATCHES {
                accel_virtual_dispatch(ctx, &r.registry, &r.domain, obj, MethodSlot(0), dup)
                    .map_err(|e| simcell::SimError::BadConfig {
                        reason: e.to_string(),
                    })?;
            }
            Ok::<u64, simcell::SimError>((ctx.now() - t0) / u64::from(DISPATCHES))
        })
        .expect("accel 0 exists");

    machine.join(handle).expect("dispatch succeeds")
}

fn host_dispatch_cycles() -> u64 {
    let r = rig(1);
    let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
    let obj = machine.alloc_main(64, 16).expect("fits");
    machine.main_mut().write_pod(obj, &r.class.0).expect("fits");
    let t0 = machine.host_now();
    for _ in 0..DISPATCHES {
        host_virtual_dispatch(&mut machine, &r.registry, obj, MethodSlot(0)).expect("resolves");
    }
    (machine.host_now() - t0) / u64::from(DISPATCHES)
}

/// Runs E3.
pub fn run(quick: bool) -> Table {
    let sizes: &[usize] = if quick {
        &[1, 40]
    } else {
        &[1, 4, 16, 40, 64, 128]
    };
    let host = host_dispatch_cycles();
    let mut table = Table::new(
        "E3",
        "Virtual dispatch through outer/inner domains (Figure 3)",
        "after the vtable lookup, a two-stage linear domain search finds the local duplicate; \
         40 entries (the paper's post-restructuring max) stay cheap next to an outer header \
         read (paper Fig. 3, Sec. 4.1)",
        vec![
            "domain size",
            "local recv (cyc)",
            "outer recv (cyc)",
            "host vcall (cyc)",
            "outer/local",
        ],
    );
    for &n in sizes {
        let local = dispatch_cycles(n, true);
        let outer = dispatch_cycles(n, false);
        table.push_row(vec![
            n.to_string(),
            local.to_string(),
            outer.to_string(),
            host.to_string(),
            speedup(outer, local),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_cost_grows_linearly_but_header_read_dominates_outer() {
        let small = dispatch_cycles(1, true);
        let large = dispatch_cycles(128, true);
        assert!(large > small, "linear search shows: {small} -> {large}");

        // At the paper's post-restructuring domain size, the outer
        // header read dominates the search cost.
        let outer = dispatch_cycles(40, false);
        let local = dispatch_cycles(40, true);
        assert!(
            outer > 3 * local,
            "outer header read dominates: {outer} vs {local}"
        );
    }

    #[test]
    fn table_has_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 2);
    }
}
