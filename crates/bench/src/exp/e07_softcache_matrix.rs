//! E7 — §4.2: "several software caches, favouring different types of
//! application behaviour".
//!
//! Offload C++ ships multiple cache implementations and asks the
//! programmer to pick by profiling. This experiment profiles four cache
//! configurations (plus no cache) against four access patterns and
//! shows there is no single winner — the paper's reason for shipping a
//! family.

use simcell::{Machine, MachineConfig, SimError};
use softcache::{CacheConfig, SoftwareCache};

use crate::table::{cycles, percent, Table};

/// Bytes per access.
const ACCESS: usize = 16;
/// Size of the accessed data set.
const DATA: u32 = 64 * 1024;

/// The access patterns profiled.
pub const PATTERNS: [&str; 4] = ["sequential", "strided", "random", "hot-set"];
/// The cache configurations profiled.
pub const CACHES: [&str; 5] = ["none", "DM 4K", "2-way 8K", "4-way 16K", "stream"];

fn offsets(pattern: &str, accesses: u32) -> Vec<u32> {
    let limit = DATA - ACCESS as u32;
    match pattern {
        "sequential" => (0..accesses).map(|i| (i * 16) % limit).collect(),
        "strided" => (0..accesses).map(|i| (i * 528) % limit).collect(),
        "random" => {
            let mut state = 0x5eedu64;
            (0..accesses)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (((state >> 33) as u32) % limit) & !0xf
                })
                .collect()
        }
        "hot-set" => {
            // 90% of accesses inside one 2 KiB hot region.
            let mut state = 0x905eedu64;
            (0..accesses)
                .map(|i| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let r = (state >> 33) as u32;
                    if i % 10 != 0 {
                        (r % 2048) & !0xf
                    } else {
                        (r % limit) & !0xf
                    }
                })
                .collect()
        }
        other => unreachable!("unknown pattern {other}"),
    }
}

/// `(total cycles, hit rate)` for one `(cache, pattern)` cell.
pub fn measure(cache_kind: &str, pattern: &str, accesses: u32) -> (u64, f64) {
    let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
    let data = machine.alloc_main(DATA, 16).expect("fits");
    let offsets = offsets(pattern, accesses);

    let handle = machine
        .offload(0)
        .spawn(|ctx| -> Result<(u64, f64), SimError> {
            let t0 = ctx.now();
            let mut buf = [0u8; ACCESS];
            match cache_kind {
                "none" => {
                    for &off in &offsets {
                        ctx.outer_read_bytes(data.offset_by(off)?, &mut buf)?;
                    }
                    Ok((ctx.now() - t0, 0.0))
                }
                "stream" => {
                    let mut cache = ctx.new_stream_cache(CacheConfig::new(1024, 1, 1))?;
                    for &off in &offsets {
                        ctx.cached_read_bytes(&mut cache, data.offset_by(off)?, &mut buf)?;
                    }
                    Ok((ctx.now() - t0, cache.stats().hit_rate()))
                }
                kind => {
                    let config = match kind {
                        "DM 4K" => CacheConfig::direct_mapped_4k(),
                        "2-way 8K" => CacheConfig::new(64, 64, 2),
                        "4-way 16K" => CacheConfig::four_way_16k(),
                        other => unreachable!("unknown cache {other}"),
                    };
                    let mut cache = ctx.new_cache(config)?;
                    for &off in &offsets {
                        ctx.cached_read_bytes(&mut cache, data.offset_by(off)?, &mut buf)?;
                    }
                    Ok((ctx.now() - t0, cache.stats().hit_rate()))
                }
            }
        })
        .expect("accel 0 exists");
    machine.join(handle).expect("pattern runs")
}

/// Number of accesses E7 performs in quick/full mode.
pub fn access_count(quick: bool) -> u32 {
    if quick {
        512
    } else {
        4096
    }
}

/// Captures the access trace of `pattern` for the cache-policy
/// autotuner. The access stream is identical for every cache kind (only
/// the interposed cache differs), so capturing the naive run yields the
/// trace that *any* candidate replays.
pub fn capture_trace(pattern: &str, accesses: u32) -> Vec<softcache::AccessRecord> {
    let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
    machine.access_trace_mut().set_enabled(true);
    let data = machine.alloc_main(DATA, 16).expect("fits");
    let offsets = offsets(pattern, accesses);
    let handle = machine
        .offload(0)
        .spawn(|ctx| -> Result<(), SimError> {
            let mut buf = [0u8; ACCESS];
            for &off in &offsets {
                ctx.outer_read_bytes(data.offset_by(off)?, &mut buf)?;
            }
            Ok(())
        })
        .expect("accel 0 exists");
    machine.join(handle).expect("pattern runs");
    machine.access_trace().records().to_vec()
}

/// Runs E7.
pub fn run(quick: bool) -> Table {
    let accesses = access_count(quick);
    let mut table = Table::new(
        "E7",
        "Software-cache family vs access patterns (Sec. 4.2)",
        "several caches favour different application behaviours; the programmer must choose by \
         profiling (paper Sec. 4.2)",
        vec![
            "pattern",
            "none",
            "DM 4K",
            "2-way 8K",
            "4-way 16K",
            "stream",
            "best",
        ],
    );
    for pattern in PATTERNS {
        let mut cells = vec![pattern.to_string()];
        let mut best = ("", u64::MAX);
        for cache in CACHES {
            let (t, rate) = measure(cache, pattern, accesses);
            if t < best.1 {
                best = (cache, t);
            }
            if cache == "none" {
                cells.push(cycles(t));
            } else {
                cells.push(format!("{} ({})", cycles(t), percent(rate)));
            }
        }
        cells.push(best.0.to_string());
        table.push_row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_no_single_cache_wins_everywhere() {
        let accesses = 1024;
        let mut winners = std::collections::HashSet::new();
        for pattern in PATTERNS {
            let mut best = ("", u64::MAX);
            for cache in &CACHES[1..] {
                let (t, _) = measure(cache, pattern, accesses);
                if t < best.1 {
                    best = (cache, t);
                }
            }
            winners.insert(best.0);
        }
        assert!(
            winners.len() >= 2,
            "different patterns must prefer different caches: {winners:?}"
        );
    }

    #[test]
    fn shape_caches_beat_no_cache_on_friendly_patterns() {
        let (none, _) = measure("none", "sequential", 1024);
        let (stream, _) = measure("stream", "sequential", 1024);
        assert!(stream < none);
        let (none, _) = measure("none", "hot-set", 1024);
        let (assoc, _) = measure("4-way 16K", "hot-set", 1024);
        assert!(assoc < none);
    }

    #[test]
    fn table_has_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.columns.len(), 7);
    }
}
