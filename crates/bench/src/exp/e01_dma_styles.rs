//! E1 — Figure 1: explicit DMA styles for collision-pair response.
//!
//! The paper's Figure 1 issues the two entity gets under one tag and
//! waits once, so "the two game entities are fetched in parallel". This
//! experiment measures the collision-pair response workload under four
//! execution styles and reports accelerator cycles per pair.

use gamekit::{
    respond_pairs_blocking, respond_pairs_host, respond_pairs_streamed, respond_pairs_tagged,
    CollisionPair, EntityArray, WorldGen,
};
use memspace::Addr;
use simcell::{AccelCtx, Machine, MachineConfig, SimError};

use crate::table::{cycles, speedup, Table};

const ENTITIES: u32 = 1024;

struct Rig {
    machine: Machine,
    entities: EntityArray,
    pairs_addr: Addr,
}

fn rig(pair_count: u32) -> Rig {
    let mut machine = Machine::new(MachineConfig::small()).expect("machine config is valid");
    let entities = EntityArray::alloc(&mut machine, ENTITIES).expect("fits main memory");
    let mut gen = WorldGen::new(0xE1);
    gen.populate(&mut machine, &entities, 80.0).expect("fits");
    let pairs_addr = gen
        .collision_pairs(&mut machine, ENTITIES, pair_count)
        .expect("fits");
    Rig {
        machine,
        entities,
        pairs_addr,
    }
}

fn accel_style(
    style: fn(&mut AccelCtx<'_>, &EntityArray, Addr, u32) -> Result<(), SimError>,
    pair_count: u32,
) -> u64 {
    let mut r = rig(pair_count);
    let entities = r.entities;
    let pairs_addr = r.pairs_addr;
    let handle = r
        .machine
        .offload(0)
        .spawn(move |ctx| style(ctx, &entities, pairs_addr, pair_count))
        .expect("accel 0 exists");
    let elapsed = handle.elapsed();
    r.machine.join(handle).expect("style succeeds");
    assert_eq!(r.machine.races_detected(), 0, "styles must be race-free");
    elapsed
}

fn host_style(pair_count: u32) -> u64 {
    let mut r = rig(pair_count);
    let flat = r
        .machine
        .main()
        .read_pod_slice::<u32>(r.pairs_addr, pair_count * 2)
        .expect("pairs readable");
    let pairs: Vec<CollisionPair> = flat
        .chunks(2)
        .map(|c| CollisionPair {
            first: c[0],
            second: c[1],
        })
        .collect();
    let t0 = r.machine.host_now();
    respond_pairs_host(&mut r.machine, &r.entities, &pairs).expect("host style succeeds");
    r.machine.host_now() - t0
}

/// Runs E1.
pub fn run(quick: bool) -> Table {
    let sweeps: &[u32] = if quick { &[256] } else { &[256, 1024, 4096] };
    let mut table = Table::new(
        "E1",
        "DMA styles for collision-pair response (Figure 1)",
        "tagged non-blocking DMA fetches both entities of a pair in parallel; correct \
         synchronisation is essential (paper Fig. 1, Sec. 2)",
        vec![
            "pairs",
            "host",
            "blocking",
            "tagged (Fig.1)",
            "pipelined",
            "tagged vs blocking",
            "pipelined vs blocking",
        ],
    );
    for &pairs in sweeps {
        let host = host_style(pairs);
        let blocking = accel_style(respond_pairs_blocking, pairs);
        let tagged = accel_style(respond_pairs_tagged, pairs);
        let streamed = accel_style(respond_pairs_streamed, pairs);
        table.push_row(vec![
            pairs.to_string(),
            cycles(host),
            cycles(blocking),
            cycles(tagged),
            cycles(streamed),
            speedup(blocking, tagged),
            speedup(blocking, streamed),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_tagging_beats_blocking_and_pipelining_beats_tagging() {
        let blocking = accel_style(respond_pairs_blocking, 256);
        let tagged = accel_style(respond_pairs_tagged, 256);
        let streamed = accel_style(respond_pairs_streamed, 256);
        assert!(tagged < blocking);
        assert!(streamed < tagged);
    }

    #[test]
    fn table_has_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.columns.len(), 7);
    }
}
