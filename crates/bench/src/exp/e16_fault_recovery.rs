//! E16 (extension) — recovery overhead under a rising fault rate.
//!
//! The consoles the paper's teams shipped on treat a flaky DMA or a
//! wedged coprocessor as a fatal bug; a robust runtime treats them as
//! schedulable events. This experiment arms `simcell`'s deterministic
//! fault plane over the E15 AI frame and dispatches it under all three
//! `offload_rt::sched` policies with the full recovery stack on:
//! transient faults (corrupted/dropped transfers, tag timeouts) retry
//! with a cycle-accounted backoff, accelerators the plane kills are
//! evicted mid-run, and tiles nothing can run degrade to the host at
//! the cost model's honest penalty.
//!
//! Two invariants anchor the table. First, recovery is *exact*: every
//! run, at every fault rate, produces the faultless frame's world
//! bit-for-bit — retries restart tiles from a clean local-store mark,
//! and completed writes overwrite any scribble damage. Second, the
//! plane is *free when quiet*: an armed all-zero plan draws nothing
//! from the fault RNG, so its cycles equal the no-plan run exactly.
//! What the table shows is the price of the rest: overhead climbs with
//! the rate, and work stealing absorbs evictions most gracefully
//! because survivors inherit and rebalance dead lanes' queues.
//!
//! The last two columns re-measure the storm with access-mode
//! declarations (the double-buffered frame of
//! [`ai_frame_sched_recovering_buffered`]): declaring the inputs `read`
//! and the output `write` elides the conservative table flush and lets
//! the put journal skip pre-image snapshots for the fully-rewritten
//! output — recovery gets cheaper exactly where the modes prove
//! rollback unnecessary, and the world stays bit-identical at every
//! rate.

use gamekit::{
    ai_frame_sched, ai_frame_sched_recovering, ai_frame_sched_recovering_buffered, AiConfig,
    EntityArray, WorldGen,
};
use offload_rt::sched::{SchedPolicy, SchedReport};
use simcell::{FaultPlan, Machine, MachineConfig, MachineStats};

use crate::table::{cycles, speedup, Table};

/// Accelerator lanes the dispatch uses.
pub const ACCELS: u16 = 6;
/// Tiles the frame is cut into.
pub const TILES: u32 = 24;
/// Retries per transient fault before the host fallback takes the tile.
pub const RETRIES: u32 = 3;
/// Backoff cycles charged per retry.
pub const BACKOFF: u64 = 1_000;
/// Seed of every fault plan (the schedule is a pure function of it).
pub const FAULT_SEED: u64 = 0xE16;

/// The fault rates the table sweeps (0 = armed-but-quiet plan).
pub const RATES: [f32; 4] = [0.0, 0.02, 0.05, 0.10];

/// Runs one frame under `policy` with a uniform fault plan at `rate`
/// (`None` = no plan armed at all); returns the scheduler report and
/// the resulting world snapshot.
pub fn measure(
    n: u32,
    policy: SchedPolicy,
    rate: Option<f32>,
) -> (SchedReport, Vec<gamekit::GameEntity>) {
    let config = AiConfig::default();
    let mut machine = Machine::new(MachineConfig::default()).expect("config valid");
    let entities = EntityArray::alloc(&mut machine, n).expect("fits");
    let mut gen = WorldGen::new(0xE16);
    gen.populate(&mut machine, &entities, 70.0).expect("fits");
    let table = gen
        .candidate_table(&mut machine, n, config.candidates)
        .expect("fits");
    let report = match rate {
        None => ai_frame_sched(
            &mut machine,
            &entities,
            table,
            &config,
            ACCELS,
            TILES,
            policy,
            &[],
        )
        .expect("tiles fit"),
        Some(rate) => ai_frame_sched_recovering(
            &mut machine,
            &entities,
            table,
            &config,
            ACCELS,
            TILES,
            policy,
            FaultPlan::uniform(FAULT_SEED, rate),
            RETRIES,
            BACKOFF,
        )
        .expect("recovery absorbs every fault"),
    };
    assert_eq!(machine.races_detected(), 0);
    let world = entities.snapshot(&machine).expect("snapshot reads");
    (report, world)
}

/// Runs the double-buffered E16 frame (sanitize pass + conservative
/// table flush, decisions into a separate output array) at `rate`, with
/// or without access-mode declarations; returns the report, the output
/// world, and the machine counters (journal and elision columns).
pub fn measure_buffered(
    n: u32,
    policy: SchedPolicy,
    rate: f32,
    declare_modes: bool,
) -> (SchedReport, Vec<gamekit::GameEntity>, MachineStats) {
    let config = AiConfig::default();
    let mut machine = Machine::new(MachineConfig::default()).expect("config valid");
    let entities = EntityArray::alloc(&mut machine, n).expect("fits");
    let out = EntityArray::alloc(&mut machine, n).expect("fits");
    let mut gen = WorldGen::new(0xE16);
    gen.populate(&mut machine, &entities, 70.0).expect("fits");
    let table = gen
        .candidate_table(&mut machine, n, config.candidates)
        .expect("fits");
    let report = ai_frame_sched_recovering_buffered(
        &mut machine,
        &entities,
        &out,
        table,
        &config,
        ACCELS,
        TILES,
        policy,
        FaultPlan::uniform(FAULT_SEED, rate),
        RETRIES,
        BACKOFF,
        declare_modes,
    )
    .expect("recovery absorbs every fault");
    assert_eq!(machine.races_detected(), 0);
    let world = out.snapshot(&machine).expect("snapshot reads");
    (report, world, *machine.stats())
}

/// Runs E16.
pub fn run(quick: bool) -> Table {
    let n = if quick { 512 } else { 1024 };
    let mut table = Table::new(
        "E16",
        "Extension: fault injection and recovery overhead by scheduling policy",
        "a deterministic fault plane (corrupt/dropped DMA, tag timeouts, accelerator death) \
         plus retry/evict/host-fallback recovery; every run reproduces the faultless world \
         bit-for-bit, and the armed-but-quiet plan costs zero cycles",
        vec![
            "policy",
            "fault rate",
            "frame AI cycles",
            "vs faultless",
            "faults",
            "retries",
            "fallbacks",
            "evicted",
            "journal B (undecl->modes)",
            "WB elided B",
        ],
    );
    for policy in [
        SchedPolicy::Static,
        SchedPolicy::ShortestQueue,
        SchedPolicy::WorkStealing,
    ] {
        let (clean, clean_world) = measure(n, policy, None);
        for rate in RATES {
            let (report, world) = measure(n, policy, Some(rate));
            assert_eq!(
                world,
                clean_world,
                "{} @ {rate}: recovery must reproduce the faultless world exactly",
                policy.name()
            );
            if rate == 0.0 {
                assert_eq!(
                    report.cycles,
                    clean.cycles,
                    "{}: an armed all-zero plan must cost nothing",
                    policy.name()
                );
            }
            // The double-buffered frame, undeclared vs mode-annotated:
            // identical worlds, but the declarations elide the
            // conservative flush and skip the output journal.
            let (_, world_u, stats_u) = measure_buffered(n, policy, rate, false);
            let (_, world_d, stats_d) = measure_buffered(n, policy, rate, true);
            assert_eq!(
                world_u,
                clean_world,
                "{} @ {rate}: the buffered frame computes the same world",
                policy.name()
            );
            assert_eq!(
                world_d,
                clean_world,
                "{} @ {rate}: access modes must not change the world",
                policy.name()
            );
            assert!(
                stats_d.journal_bytes <= stats_u.journal_bytes,
                "{} @ {rate}: modes can only shrink the journal",
                policy.name()
            );
            table.push_row(vec![
                policy.name().to_string(),
                format!("{rate:.2}"),
                cycles(report.cycles),
                speedup(report.cycles, clean.cycles),
                report.faults.to_string(),
                report.retries.to_string(),
                report.fallbacks.to_string(),
                report.evicted.len().to_string(),
                format!("{}->{}", stats_u.journal_bytes, stats_d.journal_bytes),
                stats_d.dma_writeback_bytes_elided.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_plan_is_cycle_identical_to_no_plan() {
        for policy in [
            SchedPolicy::Static,
            SchedPolicy::ShortestQueue,
            SchedPolicy::WorkStealing,
        ] {
            let (clean, clean_world) = measure(512, policy, None);
            let (armed, armed_world) = measure(512, policy, Some(0.0));
            assert_eq!(armed.cycles, clean.cycles, "{}", policy.name());
            assert_eq!(armed_world, clean_world, "{}", policy.name());
            assert_eq!(armed.faults, 0);
        }
    }

    #[test]
    fn recovery_reproduces_the_faultless_world_under_fire() {
        let (_, clean_world) = measure(512, SchedPolicy::WorkStealing, None);
        let (report, world) = measure(512, SchedPolicy::WorkStealing, Some(0.10));
        assert!(report.faults > 0, "a 10% rate must inject something");
        assert!(
            report.retries > 0 || report.fallbacks > 0,
            "and something must have recovered"
        );
        assert_eq!(world, clean_world);
    }

    #[test]
    fn overhead_rises_with_the_fault_rate() {
        let (clean, _) = measure(512, SchedPolicy::Static, None);
        let (low, _) = measure(512, SchedPolicy::Static, Some(0.02));
        let (high, _) = measure(512, SchedPolicy::Static, Some(0.10));
        assert!(low.cycles >= clean.cycles);
        assert!(
            high.cycles > clean.cycles,
            "10% faults cannot be free: {} vs {}",
            high.cycles,
            clean.cycles
        );
        assert!(high.faults > low.faults);
    }

    #[test]
    fn runs_are_bit_identical_across_repeats() {
        let a = measure(512, SchedPolicy::WorkStealing, Some(0.05));
        let b = measure(512, SchedPolicy::WorkStealing, Some(0.05));
        assert_eq!(a.0.cycles, b.0.cycles);
        assert_eq!(a.0.faults, b.0.faults);
        assert_eq!(a.0.evicted, b.0.evicted);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn table_has_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 12, "3 policies x 4 rates");
        assert_eq!(t.columns.len(), 10);
    }

    #[test]
    fn mode_declarations_shrink_recovery_without_changing_the_world() {
        let (undeclared, world_u, stats_u) =
            measure_buffered(512, SchedPolicy::WorkStealing, 0.05, false);
        let (declared, world_d, stats_d) =
            measure_buffered(512, SchedPolicy::WorkStealing, 0.05, true);
        assert_eq!(world_u, world_d, "modes must not change the world");
        assert!(
            stats_d.journal_bytes < stats_u.journal_bytes,
            "`write`-declared output skips snapshots: {} vs {}",
            stats_d.journal_bytes,
            stats_u.journal_bytes
        );
        assert!(stats_d.journal_bytes_skipped > 0);
        assert!(
            stats_d.dma_writeback_bytes_elided > 0,
            "the conservative flush must elide under `reads`"
        );
        assert_eq!(stats_u.dma_writeback_bytes_elided, 0);
        assert!(
            declared.cycles < undeclared.cycles,
            "elided flush puts make recovery cheaper: {} vs {}",
            declared.cycles,
            undeclared.cycles
        );
    }
}
