//! E10 — §3: automatic call-graph duplication.
//!
//! Offload C++ compiles every function reachable from an offload block
//! once per combination of pointer-parameter memory spaces actually
//! used. This experiment compiles programs whose call sites exercise
//! all `2^k` combinations of `k` pointer parameters and reports the
//! duplicate counts the compiler produced.

use offload_lang::{compile, Target};

use crate::table::Table;

/// Source whose function `f` takes `k` pointer parameters and is called
/// with every local/outer combination from inside an offload block.
fn source_for(k: usize) -> String {
    let params: Vec<String> = (0..k).map(|i| format!("p{i}: int*")).collect();
    let sum: Vec<String> = (0..k).map(|i| format!("*p{i}")).collect();
    let mut calls = String::new();
    for combo in 0..(1u32 << k) {
        let args: Vec<String> = (0..k)
            .map(|i| {
                if combo & (1 << i) != 0 {
                    format!("&g{i}")
                } else {
                    format!("&l{i}")
                }
            })
            .collect();
        calls.push_str(&format!("        sink = sink + f({});\n", args.join(", ")));
    }
    let globals: String = (0..k).map(|i| format!("var g{i}: int;\n")).collect();
    let locals: String = (0..k)
        .map(|i| format!("        let l{i}: int = {i};\n"))
        .collect();
    format!(
        r#"
{globals}var sink: int;
fn f({params}) -> int {{ return {sum}; }}
fn main() -> int {{
    offload {{
{locals}{calls}    }}
    return sink;
}}
"#,
        params = params.join(", "),
        sum = if k == 0 {
            "0".to_string()
        } else {
            sum.join(" + ")
        },
    )
}

/// `(duplicates compiled for f, call-site combinations)` for `k`
/// pointer parameters.
pub fn measure(k: usize) -> (usize, usize) {
    let source = source_for(k);
    let program = compile(&source, &Target::cell_like()).expect("generated program compiles");
    let duplicates = program.stats.duplicates.get("f").copied().unwrap_or(0);
    // The host variant is compiled eagerly too, on top of the offload
    // duplicates.
    (duplicates, 1 << k)
}

/// Runs E10.
pub fn run(quick: bool) -> Table {
    let ks: &[usize] = if quick { &[1, 2] } else { &[1, 2, 3, 4] };
    let mut table = Table::new(
        "E10",
        "Automatic function duplication per memory-space signature (Sec. 3)",
        "distinct combinations of memory spaces in arguments require distinct duplicates, \
         compiled on demand via call-graph duplication (paper Sec. 3, Fig. 3)",
        vec![
            "pointer params k",
            "space combinations 2^k",
            "offload duplicates",
            "host variant",
            "total variants of f",
        ],
    );
    for &k in ks {
        let (duplicates, combos) = measure(k);
        table.push_row(vec![
            k.to_string(),
            combos.to_string(),
            (duplicates - 1).to_string(),
            "1".to_string(),
            duplicates.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_duplicates_grow_as_two_to_the_k() {
        for k in 1..=4 {
            let (duplicates, combos) = measure(k);
            assert_eq!(
                duplicates,
                combos + 1,
                "2^{k} offload duplicates + 1 host variant"
            );
        }
    }

    #[test]
    fn single_combination_compiles_single_duplicate() {
        // Selective compilation: only the signature actually used.
        let source = r#"
            var g: int;
            fn f(p: int*) -> int { return *p; }
            fn main() -> int {
                offload { g = f(&g); }
                return g;
            }
        "#;
        let program = compile(source, &Target::cell_like()).unwrap();
        // Host variant + one offload duplicate (outer pointer only).
        assert_eq!(program.stats.duplicates.get("f"), Some(&2));
    }

    #[test]
    fn table_has_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 2);
    }
}
