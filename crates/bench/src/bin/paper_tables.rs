//! Regenerates every table of the reproduction (E1–E18).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin paper_tables [--quick] [--markdown] [EXP...]
//! cargo run --release -p bench --bin paper_tables -- --autotune
//! cargo run --release -p bench --bin paper_tables -- --trace e2.json
//! cargo run --release -p bench --bin paper_tables -- --stats
//! ```
//!
//! With experiment ids (e.g. `E4 E9`) only those tables run.
//!
//! `--autotune` re-runs E7 and E12 with the trace-driven cache-policy
//! autotuner next to the hand-picked winner, asserting bit-identical
//! replay and family agreement (see `softcache::autotune`).
//!
//! `--trace <file>` runs one traced E2 offloaded frame (paper Figure 2)
//! and writes its event log as Chrome trace-event JSON — open the file
//! in <https://ui.perfetto.dev>; `PROFILING.md` is the reading guide.
//! It also writes `<file stem>-sched.json`: a work-stealing E15 frame
//! whose scheduler lanes (tile slices, idle gaps, steals) PROFILING.md's
//! "Reading the scheduler lane" section walks through, and
//! `<file stem>-faults.json`: a work-stealing E16 frame under a 5%
//! fault plan whose fault lanes (injections, retries, evictions, host
//! fallbacks) the "Reading the faults lane" section reads, and
//! `<file stem>-pipe.json`: a pipelined E17 staged frame whose
//! pipeline lanes (stage/chunk slices, input-wait and backpressure
//! stalls) the "Reading the pipeline lane" section reads.
//! `--stats` runs the same frame and prints the plain-text utilization
//! report instead. Tracing is zero simulated cost, so neither flag
//! perturbs any table.

use bench::exp;
use bench::profile::{traced_e2_frame, traced_fault_frame, traced_pipe_frame, traced_sched_frame};
use bench::Table;
use simcell::{chrome_trace_json, parse_chrome_trace};

/// An experiment id paired with its runner.
type Runner = (&'static str, fn(bool) -> Table);

/// Runs a traced E2 frame and writes the Chrome trace JSON to `path`,
/// then reads the file back and round-trips it through the trace parser
/// so a write that produced malformed or truncated JSON fails loudly.
fn write_trace(path: &str) {
    let (machine, stats) = traced_e2_frame(true);
    let json = chrome_trace_json(machine.events());
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    let back = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let parsed = parse_chrome_trace(&back)
        .unwrap_or_else(|e| panic!("{path} does not parse as a Chrome trace: {e}"));
    // The export adds `M` (metadata) records for lane names, and each
    // matched OffloadStart/OffloadEnd pair collapses into one `X`
    // slice — so the expected payload count is the log length minus
    // one per completed offload.
    let payload = parsed.iter().filter(|e| e.ph != 'M').count();
    let completed_offloads = machine
        .events()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, simcell::EventKind::OffloadEnd { .. }))
        .count();
    assert_eq!(
        payload,
        machine.events().len() - completed_offloads,
        "{path}: parsed payload event count must match the event log"
    );
    eprintln!(
        "wrote {path}: {} events from one offloaded frame ({} host cycles, {} pairs) — \
         open in https://ui.perfetto.dev (see PROFILING.md)",
        machine.events().len(),
        stats.host_cycles,
        stats.pairs,
    );
    write_sched_trace(&suffixed_trace_path(path, "sched"));
    write_fault_trace(&suffixed_trace_path(path, "faults"));
    write_pipe_trace(&suffixed_trace_path(path, "pipe"));
}

/// Derives a sibling trace path written next to the main one:
/// `e2.json` + `sched` → `e2-sched.json`.
fn suffixed_trace_path(path: &str, suffix: &str) -> String {
    match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}-{suffix}.json"),
        None => format!("{path}-{suffix}"),
    }
}

/// Runs one work-stealing E15 frame and writes its Chrome trace —
/// scheduler lanes included — to `path`, round-tripping it through the
/// parser with the same payload arithmetic as the main trace (every
/// scheduler event exports as exactly one payload record).
fn write_sched_trace(path: &str) {
    let (machine, report) = traced_sched_frame(true);
    let json = chrome_trace_json(machine.events());
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    let back = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let parsed = parse_chrome_trace(&back)
        .unwrap_or_else(|e| panic!("{path} does not parse as a Chrome trace: {e}"));
    let payload = parsed.iter().filter(|e| e.ph != 'M').count();
    let completed_offloads = machine
        .events()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, simcell::EventKind::OffloadEnd { .. }))
        .count();
    assert_eq!(
        payload,
        machine.events().len() - completed_offloads,
        "{path}: parsed payload event count must match the event log"
    );
    let sched_lanes = parsed
        .iter()
        .filter(|e| e.ph == 'M' && e.tid >= simcell::trace::SCHED_LANE_BASE)
        .count();
    assert!(
        sched_lanes >= usize::from(report.accels),
        "{path}: every dispatch lane must be named in the export"
    );
    eprintln!(
        "wrote {path}: {} events from one work-stealing E15 frame ({} tiles, {} steals) — \
         the scheduler lanes walkthrough in PROFILING.md reads this file",
        machine.events().len(),
        report.tiles,
        report.steals,
    );
}

/// Runs one work-stealing E16 frame under a 5% fault plan and writes
/// its Chrome trace — fault lanes included — to `path`, round-tripping
/// it through the parser with the same payload arithmetic as the other
/// traces (every fault and recovery event exports as exactly one
/// payload record).
fn write_fault_trace(path: &str) {
    let (machine, report) = traced_fault_frame(true);
    let json = chrome_trace_json(machine.events());
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    let back = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let parsed = parse_chrome_trace(&back)
        .unwrap_or_else(|e| panic!("{path} does not parse as a Chrome trace: {e}"));
    let payload = parsed.iter().filter(|e| e.ph != 'M').count();
    let completed_offloads = machine
        .events()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, simcell::EventKind::OffloadEnd { .. }))
        .count();
    assert_eq!(
        payload,
        machine.events().len() - completed_offloads,
        "{path}: parsed payload event count must match the event log"
    );
    let fault_lanes = parsed
        .iter()
        .filter(|e| e.ph == 'M' && e.tid >= simcell::trace::FAULT_LANE_BASE)
        .count();
    assert!(
        fault_lanes >= 1,
        "{path}: a frame under fire must name at least one fault lane"
    );
    eprintln!(
        "wrote {path}: {} events from one E16 frame under fire ({} faults, {} retries, \
         {} host fallbacks) — the faults lane walkthrough in PROFILING.md reads this file",
        machine.events().len(),
        report.faults,
        report.retries,
        report.fallbacks,
    );
}

/// Runs one pipelined E17 staged frame and writes its Chrome trace —
/// pipeline lanes included — to `path`, round-tripping it through the
/// parser with the same payload arithmetic as the other traces (every
/// pipeline event exports as exactly one payload record).
fn write_pipe_trace(path: &str) {
    let (machine, report) = traced_pipe_frame(true);
    let json = chrome_trace_json(machine.events());
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    let back = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let parsed = parse_chrome_trace(&back)
        .unwrap_or_else(|e| panic!("{path} does not parse as a Chrome trace: {e}"));
    let payload = parsed.iter().filter(|e| e.ph != 'M').count();
    let completed_offloads = machine
        .events()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, simcell::EventKind::OffloadEnd { .. }))
        .count();
    assert_eq!(
        payload,
        machine.events().len() - completed_offloads,
        "{path}: parsed payload event count must match the event log"
    );
    let pipe_lanes = parsed
        .iter()
        .filter(|e| e.ph == 'M' && e.tid >= simcell::trace::PIPE_LANE_BASE)
        .count();
    assert!(
        pipe_lanes >= usize::from(report.stages),
        "{path}: every pipeline stage lane must be named in the export"
    );
    eprintln!(
        "wrote {path}: {} events from one pipelined E17 staged frame ({} stages x {} chunks, \
         {} input-wait cycles, {} backpressure cycles) — the pipeline lane walkthrough in \
         PROFILING.md reads this file",
        machine.events().len(),
        report.stages,
        report.chunks,
        report.input_wait_cycles,
        report.backpressure_cycles,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("--trace needs a file argument, e.g. --trace e2.json");
            std::process::exit(2);
        };
        write_trace(path);
        return;
    }
    if args.iter().any(|a| a == "--stats") {
        let (machine, _) = traced_e2_frame(false);
        print!("{}", machine.utilization_report());
        return;
    }
    if args.iter().any(|a| a == "--autotune") {
        eprintln!(
            "Offload reproduction — autotuned E7/E12{}…",
            if quick { " (quick sizes)" } else { "" },
        );
        bench::autotune::run(quick, markdown);
        return;
    }
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_uppercase())
        .collect();

    let runners: Vec<Runner> = vec![
        ("E1", exp::e01_dma_styles::run),
        ("E2", exp::e02_offload_overlap::run),
        ("E3", exp::e03_domain_dispatch::run),
        ("E4", exp::e04_component_restructure::run),
        ("E5", exp::e05_ai_offload::run),
        ("E6", exp::e06_accessor_loop::run),
        ("E7", exp::e07_softcache_matrix::run),
        ("E8", exp::e08_uniform_grouping::run),
        ("E9", exp::e09_word_addressing::run),
        ("E10", exp::e10_duplication::run),
        ("E11", exp::e11_race_detection::run),
        ("E12", exp::e12_cache_crossover::run),
        ("E13", exp::e13_code_loading::run),
        ("E14", exp::e14_multi_accel::run),
        ("E15", exp::e15_sched_policies::run),
        ("E16", exp::e16_fault_recovery::run),
        ("E17", exp::e17_pipeline::run),
        ("E18", exp::e18_graph::run),
    ];

    eprintln!(
        "Offload reproduction — regenerating {} experiment table(s){}…",
        if wanted.is_empty() {
            runners.len()
        } else {
            wanted.len()
        },
        if quick { " (quick sizes)" } else { "" },
    );
    for (id, runner) in runners {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == id) {
            continue;
        }
        let table = runner(quick);
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("{table}");
        }
    }
}
