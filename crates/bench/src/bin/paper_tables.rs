//! Regenerates every table of the reproduction (E1–E12).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin paper_tables [--quick] [--markdown] [EXP...]
//! ```
//!
//! With experiment ids (e.g. `E4 E9`) only those tables run.

use bench::exp;
use bench::Table;

/// An experiment id paired with its runner.
type Runner = (&'static str, fn(bool) -> Table);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_uppercase())
        .collect();

    let runners: Vec<Runner> = vec![
        ("E1", exp::e01_dma_styles::run),
        ("E2", exp::e02_offload_overlap::run),
        ("E3", exp::e03_domain_dispatch::run),
        ("E4", exp::e04_component_restructure::run),
        ("E5", exp::e05_ai_offload::run),
        ("E6", exp::e06_accessor_loop::run),
        ("E7", exp::e07_softcache_matrix::run),
        ("E8", exp::e08_uniform_grouping::run),
        ("E9", exp::e09_word_addressing::run),
        ("E10", exp::e10_duplication::run),
        ("E11", exp::e11_race_detection::run),
        ("E12", exp::e12_cache_crossover::run),
        ("E13", exp::e13_code_loading::run),
        ("E14", exp::e14_multi_accel::run),
    ];

    eprintln!(
        "Offload reproduction — regenerating {} experiment table(s){}…",
        if wanted.is_empty() {
            runners.len()
        } else {
            wanted.len()
        },
        if quick { " (quick sizes)" } else { "" },
    );
    for (id, runner) in runners {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == id) {
            continue;
        }
        let table = runner(quick);
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("{table}");
        }
    }
}
