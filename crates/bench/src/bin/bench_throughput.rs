//! Emits `BENCH_throughput.json`: the hot-path throughput report.
//!
//! Two kinds of numbers:
//!
//! - **End-to-end throughput** of the simulated-execution pipeline:
//!   simulated cycles retired per wall-second (a double-buffered
//!   streaming offload) and VM instructions retired per wall-second (a
//!   call-heavy Offload/Mini program with virtual dispatch). These are
//!   the headline "how fast does the simulator run" figures.
//! - **Seed-vs-current speedups** on the hot paths the allocation-free
//!   and raw-speed overhauls touched, each timed against a faithful
//!   standalone replica of the seed implementation on an identical
//!   workload (see [`bench::hotpath`]) — plus the `vm_superinstr` lane,
//!   which times the real VM on the same program with the peephole
//!   fusion pass on and off (pinned bit-identical in simulated time).
//! - **Simulated overlap** (`pipeline_overlap`): the staged frame's
//!   sequential-over-pipeline cycle ratio — deterministic simulated
//!   time rather than wall time, so the perf budget can enforce it
//!   without CI noise ever moving it.
//! - **Mode elision** (`mode_elision`): a read-only tile whose generic
//!   body conservatively flushes its buffer, timed undeclared (the
//!   flush is a real DMA put) vs `reads`-declared (the runtime proves
//!   the buffer unchanged and elides the transfer). Same deterministic
//!   simulated-cycle discipline as `pipeline_overlap`.
//! - **Gathered traversal** (`graph_frontier`): E18's irregular graph
//!   walk (BFS + connected components) with naive per-edge remote
//!   derefs vs batched frontier gathers, in deterministic simulated
//!   cycles — the perf budget's guard on the gather engine.
//!
//! Usage: `cargo run --release -p bench --bin bench_throughput
//! [output.json]`. Defaults to `BENCH_throughput.json` in the current
//! directory.
//!
//! With `--farm` the report gains the sim-farm scaling lane:
//! `worlds_per_sec` and aggregate `farm_sim_cycles_per_sec` at
//! 1/2/4/8 worker threads, measured on the worker critical path (see
//! [`bench::farmlane`] for why that, and not wall clock, is the
//! scaling signal on CI boxes), plus `farm_scaling_2t`/`_4t` entries
//! in the `"speedups"` section so the scaling joins the perf budget.
//! `--quick` shrinks the farm batch for CI.
//!
//! With `--check <baseline.json> [--max-regress <ratio>]` the run
//! additionally enforces the CI perf-regression budget: after writing
//! the fresh report, every hot-path speedup is compared against the
//! baseline's and the process exits non-zero if any fell below
//! `ratio` (default 0.85) of its committed value.

use std::time::Duration;

use bench::hotpath::{
    dma_ledger_legacy, dma_ledger_rings, vm_call_path_legacy, vm_call_path_sliced, vm_value_enum,
    vm_value_tagged, CopyRig,
};
use bench::timing::{row, time, Measurement};
use offload_lang::{compile, Target, Vm};
use offload_rt::{process_stream, ArrayAccessor, RemoteSlice, StreamConfig};
use simcell::{Machine, MachineConfig};

/// A call-heavy Offload/Mini program: virtual dispatch through a
/// domain, function calls, and outer accesses inside an offload block.
const VM_PROGRAM: &str = r#"
    class Entity {
        hp: float;
        virtual fn tick(d: float) { self.hp = self.hp - d; }
    }
    class Enemy : Entity {
        override fn tick(d: float) { self.hp = self.hp - d - d; }
    }
    var e: Entity*;
    var f: Entity*;
    var total: int;

    fn accumulate(a: int, b: int) -> int { return a + b; }

    fn main() -> int {
        e = new Enemy;
        f = new Entity;
        e.hp = 1000.0;
        f.hp = 1000.0;
        let i: int = 0;
        while i < 40 {
            offload domain(Entity.tick, Enemy.tick) {
                let j: int = 0;
                while j < 10 {
                    e.tick(1.0);
                    f.tick(1.0);
                    j = j + 1;
                }
            }
            total = accumulate(total, i);
            i = i + 1;
        }
        return total;
    }
"#;

/// One full VM run on a recycled machine; returns (simulated cycles,
/// instructions retired).
///
/// The machine is recycled with [`Machine::reset_for_seed`] — the sim
/// farm's arena-reuse path, pinned bit-identical to a fresh machine —
/// so the measurement covers the VM (compile artefacts are shared,
/// construction is a reset), not the allocator's appetite for zeroing
/// fresh regions. See PROFILING.md for the measurement conditions.
fn vm_run(program: &offload_lang::Program, machine: &mut Machine) -> (u64, u64) {
    machine.reset_for_seed(0);
    let mut vm = Vm::new(program, machine).expect("program fits");
    vm.run(machine).expect("program runs");
    (machine.host_now(), vm.instructions_executed())
}

/// One full streaming offload; returns simulated cycles retired.
fn stream_run() -> u64 {
    const LEN: u32 = 4096;
    let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
    let remote = machine.alloc_main_slice::<u32>(LEN).expect("fits");
    let values: Vec<u32> = (0..LEN).collect();
    machine
        .main_mut()
        .write_pod_slice(remote, &values)
        .expect("fits");
    let handle = machine
        .offload(0)
        .spawn(|ctx| {
            process_stream::<u32, _>(
                ctx,
                remote,
                LEN,
                StreamConfig {
                    chunk_elems: 256,
                    write_back: true,
                },
                |ctx, _, chunk| {
                    for v in chunk.iter_mut() {
                        *v = v.wrapping_mul(3).wrapping_add(1);
                    }
                    ctx.compute(chunk.len() as u64);
                    Ok(())
                },
            )
        })
        .expect("accel 0 exists");
    let elapsed = handle.elapsed();
    machine.join(handle).expect("stream succeeds");
    elapsed
}

/// Simulated cycles for the staged frame (skin → collide → resolve)
/// run sequentially stage-by-stage vs overlapped through
/// `machine.pipeline()`, on identical seeded worlds (bit-identity
/// asserted). The ratio is the `pipeline_overlap` perf lane: pure
/// simulated time, so CI load cannot move it — any regression is a
/// real scheduling change.
fn pipeline_overlap_cycles() -> (u64, u64) {
    use gamekit::{staged_frame_pipeline, staged_frame_sequential, EntityArray, WorldGen};
    const N: u32 = 512;
    const CHUNK: u32 = 64;
    let world = || {
        let mut machine = Machine::new(MachineConfig::default()).expect("config valid");
        let entities = EntityArray::alloc(&mut machine, N).expect("fits");
        WorldGen::new(0xE17)
            .populate(&mut machine, &entities, 100.0)
            .expect("fits");
        (machine, entities)
    };
    let (mut seq_m, seq_e) = world();
    let sequential = staged_frame_sequential(&mut seq_m, &seq_e, CHUNK).expect("fits");
    let (mut pipe_m, pipe_e) = world();
    let report = staged_frame_pipeline(&mut pipe_m, &pipe_e, CHUNK, 2).expect("fits");
    assert_eq!(
        seq_m.memory_hash(),
        pipe_m.memory_hash(),
        "the pipeline must produce the bit-identical world"
    );
    (sequential, report.cycles)
}

/// Simulated cycles for a read-only tile offload whose generic body
/// defensively rewrites its buffer and conservatively flushes it, run
/// undeclared (the flush is a real DMA put) vs with a `reads`
/// declaration (the flush is elided — the buffer is byte-identical to
/// main memory, so the transfer never issues). Pure simulated time,
/// deterministic, bit-identical worlds; the ratio is the
/// `mode_elision` perf lane.
fn mode_elision_cycles() -> (u64, u64) {
    const LEN: u32 = 2048;
    let run = |declare: bool| -> (u64, u64) {
        let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
        let remote = machine.alloc_main_slice::<u32>(LEN).expect("fits");
        let values: Vec<u32> = (0..LEN).map(|v| v.wrapping_mul(7)).collect();
        machine
            .main_mut()
            .write_pod_slice(remote, &values)
            .expect("fits");
        let mut builder = machine.offload(0).label("read-only tile");
        if declare {
            builder = builder.reads(remote, LEN * 4);
        }
        let handle = builder
            .spawn(move |ctx| {
                let mut tile = ArrayAccessor::<u32>::fetch(ctx, remote, LEN)?;
                // Defensive rewrite of the header slots: each is
                // stored back with the value it already holds, so the
                // whole buffer ends dirty but unchanged and the
                // generic epilogue flushes it conservatively.
                for i in 0..8 {
                    let v = tile.get(ctx, i)?;
                    tile.set(ctx, i, &v)?;
                }
                tile.write_back(ctx)
            })
            .expect("accel 0 exists");
        let elapsed = handle.elapsed();
        machine.join(handle).expect("tile succeeds");
        (elapsed, machine.memory_hash())
    };
    let (undeclared, hash_u) = run(false);
    let (declared, hash_d) = run(true);
    assert_eq!(
        hash_u, hash_d,
        "eliding the flush must not change a single byte"
    );
    (undeclared, declared)
}

/// Simulated cycles for the irregular graph traversal (E18's BFS plus
/// connected components over the seeded interaction graph) via naive
/// per-edge remote derefs vs batched frontier gathers, on identical
/// graphs (bit-identity asserted). Pure simulated time, deterministic;
/// the ratio is the `graph_frontier` perf lane.
fn graph_frontier_cycles() -> (u64, u64) {
    use bench::exp::e18_graph::measure;
    use gamekit::graph::GraphAccess;
    let (naive, naive_hash, _) = measure(true, &GraphAccess::Naive);
    let (gather, gather_hash, plans) = measure(true, &GraphAccess::Gather);
    assert_eq!(
        naive_hash, gather_hash,
        "gathered traversal must produce the bit-identical memory image"
    );
    assert!(plans > 0, "the gather variant must use the gather engine");
    (naive, gather)
}

struct Comparison {
    key: &'static str,
    label: &'static str,
    legacy: Measurement,
    current: Measurement,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.current.speedup_over(&self.legacy)
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Parsed command line: output path plus the optional budget check.
struct Args {
    out_path: String,
    check: Option<(String, f64)>,
    farm: bool,
    quick: bool,
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = None;
    let mut baseline = None;
    let mut max_regress = 0.85f64;
    let mut farm = false;
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--farm" => {
                farm = true;
                i += 1;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--check" => {
                baseline = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--check needs a baseline file, e.g. --check BENCH_throughput.json");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--max-regress" => {
                max_regress = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--max-regress needs a ratio, e.g. --max-regress 0.85");
                        std::process::exit(2);
                    });
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                std::process::exit(2);
            }
            positional => {
                out_path = Some(positional.to_string());
                i += 1;
            }
        }
    }
    Args {
        out_path: out_path.unwrap_or_else(|| "BENCH_throughput.json".to_string()),
        check: baseline.map(|b| (b, max_regress)),
        farm,
        quick,
    }
}

/// Enforces the perf-regression budget; returns the process exit code.
fn run_check(report_json: &str, baseline_path: &str, max_regress: f64) -> i32 {
    let baseline_json = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return 2;
        }
    };
    let baseline = match bench::perfbudget::parse_speedups(&baseline_json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("baseline {baseline_path} is not a throughput report: {e}");
            return 2;
        }
    };
    let current =
        bench::perfbudget::parse_speedups(report_json).expect("fresh report always parses");
    let violations = bench::perfbudget::check_speedups(&baseline, &current, max_regress);
    for (key, base) in &baseline {
        let measured = current
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or(0.0);
        eprintln!(
            "  budget {key}: baseline {base:.3}x, current {measured:.3}x ({:.0}% — floor {:.0}%)",
            100.0 * measured / base,
            100.0 * max_regress
        );
    }
    if violations.is_empty() {
        eprintln!("perf budget holds: no hot path below {max_regress} of baseline");
        0
    } else {
        for v in &violations {
            eprintln!(
                "PERF REGRESSION {}: speedup {:.3}x is {:.0}% of the committed {:.3}x \
                 (budget floor {:.0}%)",
                v.key,
                v.current,
                100.0 * v.ratio(),
                v.baseline,
                100.0 * max_regress
            );
        }
        1
    }
}

fn main() {
    let args = parse_args();
    let out_path = args.out_path;
    let budget = Duration::from_millis(300);

    // --- End-to-end throughput -----------------------------------
    eprintln!("end-to-end pipeline throughput");
    let program = compile(VM_PROGRAM, &Target::cell_like()).expect("benchmark program compiles");
    let mut vm_machine = Machine::new(MachineConfig::small()).expect("config valid");
    let (vm_cycles, vm_instrs) = vm_run(&program, &mut vm_machine);
    let vm_wall = time("vm program (calls + offloads)", budget, || {
        vm_run(&program, &mut vm_machine)
    });
    eprintln!("  {}", row(&vm_wall));
    let vm_instrs_per_sec = vm_instrs as f64 * vm_wall.iters_per_sec();
    let vm_cycles_per_sec = vm_cycles as f64 * vm_wall.iters_per_sec();

    let stream_cycles = stream_run();
    let stream_wall = time("double-buffered stream offload", budget, stream_run);
    eprintln!("  {}", row(&stream_wall));
    let stream_cycles_per_sec = stream_cycles as f64 * stream_wall.iters_per_sec();

    // The headline figure pools both pipelines: total simulated cycles
    // retired per second of wall time across the measured runs.
    let sim_cycles_per_sec = stream_cycles_per_sec + vm_cycles_per_sec;

    // --- Seed-vs-current hot paths -------------------------------
    eprintln!("seed-vs-current hot paths");
    assert_eq!(dma_ledger_legacy(512), dma_ledger_rings(512));
    let mut rig = CopyRig::new(1024);
    assert_eq!(rig.step_legacy(), rig.step_new());
    assert_eq!(rig.read_slice_legacy(), rig.read_slice_new());
    assert_eq!(vm_call_path_legacy(512), vm_call_path_sliced(512));
    assert_eq!(vm_value_enum(512), vm_value_tagged(512));

    // The superinstruction lane runs the *real* VM twice on the same
    // program, fused vs unfused; fusion must be invisible to the
    // simulated machine, so the cycle/instruction pins are asserted
    // live before either side is timed.
    let plain = compile(
        VM_PROGRAM,
        &Target::cell_like().with_superinstructions(false),
    )
    .expect("benchmark program compiles unfused");
    assert_eq!(
        vm_run(&plain, &mut vm_machine),
        (vm_cycles, vm_instrs),
        "superinstruction fusion must not change simulated cycles or instruction counts"
    );

    let comparisons = [
        Comparison {
            key: "dma_issue_wait",
            label: "DMA issue/wait bookkeeping (8 live tag groups)",
            legacy: time("dma: flat Vec + retain (seed)", budget, || {
                dma_ledger_legacy(512)
            }),
            current: time("dma: per-tag rings (current)", budget, || {
                dma_ledger_rings(512)
            }),
        },
        Comparison {
            key: "accessor_bulk_transfer",
            label: "accessor bulk transfer (1 KiB copies + typed reads)",
            legacy: {
                let m1 = time("copy: read_bytes().to_vec() (seed)", budget, || {
                    rig.step_legacy()
                });
                let m2 = time("read: fresh Vec + element loop (seed)", budget, || {
                    rig.read_slice_legacy()
                });
                Measurement {
                    name: "bulk transfer (seed)".to_string(),
                    iters: m1.iters + m2.iters,
                    elapsed: m1.elapsed + m2.elapsed,
                }
            },
            current: {
                let m1 = time("copy: copy_between slices (current)", budget, || {
                    rig.step_new()
                });
                let m2 = time("read: scratch reuse + memcpy (current)", budget, || {
                    rig.read_slice_new()
                });
                Measurement {
                    name: "bulk transfer (current)".to_string(),
                    iters: m1.iters + m2.iters,
                    elapsed: m1.elapsed + m2.elapsed,
                }
            },
        },
        Comparison {
            key: "vm_dispatch",
            label: "VM call-path bookkeeping (arg slices + flat slots)",
            legacy: time("vm: pop into Vec + HashMap (seed)", budget, || {
                vm_call_path_legacy(512)
            }),
            current: time("vm: stack split + flat slots (current)", budget, || {
                vm_call_path_sliced(512)
            }),
        },
        Comparison {
            key: "vm_tagged_dispatch",
            label: "VM operand representation (tagged word vs enum)",
            legacy: time("vm: enum operand stack (seed)", budget, || {
                vm_value_enum(512)
            }),
            current: time("vm: tagged machine words (current)", budget, || {
                vm_value_tagged(512)
            }),
        },
        Comparison {
            key: "vm_superinstr",
            label: "VM superinstruction fusion (full program, fused vs unfused)",
            legacy: time("vm: superinstructions off", budget, || {
                vm_run(&plain, &mut vm_machine)
            }),
            current: time("vm: superinstructions on", budget, || {
                vm_run(&program, &mut vm_machine)
            }),
        },
    ];
    for c in &comparisons {
        eprintln!("  {}", row(&c.legacy));
        eprintln!("  {}", row(&c.current));
        eprintln!("  {}: {:.2}x", c.key, c.speedup());
    }

    // --- Pipeline overlap lane (simulated, deterministic) ---------
    eprintln!("pipeline overlap (simulated cycles, deterministic)");
    let (pipe_seq_cycles, pipe_par_cycles) = pipeline_overlap_cycles();
    let pipeline_overlap = pipe_seq_cycles as f64 / pipe_par_cycles as f64;
    eprintln!(
        "  staged frame: sequential {pipe_seq_cycles} cycles, pipeline {pipe_par_cycles} \
         cycles: {pipeline_overlap:.2}x"
    );

    // --- Mode-elision lane (simulated, deterministic) -------------
    eprintln!("mode elision (simulated cycles, deterministic)");
    let (mode_undecl_cycles, mode_decl_cycles) = mode_elision_cycles();
    let mode_elision = mode_undecl_cycles as f64 / mode_decl_cycles as f64;
    eprintln!(
        "  read-only tile: undeclared {mode_undecl_cycles} cycles, `reads`-declared \
         {mode_decl_cycles} cycles: {mode_elision:.2}x"
    );

    // --- Graph-frontier lane (simulated, deterministic) -----------
    eprintln!("graph frontier (simulated cycles, deterministic)");
    let (graph_naive_cycles, graph_gather_cycles) = graph_frontier_cycles();
    let graph_frontier = graph_naive_cycles as f64 / graph_gather_cycles as f64;
    eprintln!(
        "  irregular traversal: naive {graph_naive_cycles} cycles, gathered \
         {graph_gather_cycles} cycles: {graph_frontier:.2}x"
    );

    // --- Sim-farm scaling lane ------------------------------------
    let farm_bench = if args.farm {
        let worlds = if args.quick { 32 } else { 64 };
        let threads: &[usize] = if args.quick {
            &[1, 2, 4]
        } else {
            &[1, 2, 4, 8]
        };
        eprintln!("sim farm scaling ({worlds} worlds per lane)");
        let bench = bench::farmlane::run_farm_bench(worlds, threads);
        for lane in &bench.lanes {
            eprintln!(
                "  {} worker(s): {:.0} worlds/s critical-path ({:.0} wall), \
                 {:.2e} sim cycles/s, scaling {:.2}x",
                lane.threads,
                lane.worlds_per_sec,
                lane.wall_worlds_per_sec,
                lane.farm_sim_cycles_per_sec,
                bench.scaling(lane.threads)
            );
        }
        Some(bench)
    } else {
        None
    };

    // --- Report ---------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"sim_cycles_per_sec\": {sim_cycles_per_sec:.0},\n"
    ));
    json.push_str(&format!(
        "  \"vm_instrs_per_sec\": {vm_instrs_per_sec:.0},\n"
    ));
    json.push_str("  \"pipelines\": {\n");
    json.push_str(&format!(
        "    \"vm_program\": {{ \"sim_cycles\": {vm_cycles}, \"vm_instrs\": {vm_instrs}, \"runs_per_sec\": {:.2} }},\n",
        vm_wall.iters_per_sec()
    ));
    json.push_str(&format!(
        "    \"stream_offload\": {{ \"sim_cycles\": {stream_cycles}, \"runs_per_sec\": {:.2} }}\n",
        stream_wall.iters_per_sec()
    ));
    json.push_str("  },\n");
    if let Some(farm) = &farm_bench {
        json.push_str("  \"farm\": {\n");
        json.push_str(&format!("    \"worlds\": {},\n", farm.worlds));
        json.push_str(&format!(
            "    \"batch_sim_cycles\": {},\n",
            farm.batch_sim_cycles
        ));
        json.push_str("    \"lanes\": [\n");
        for (i, lane) in farm.lanes.iter().enumerate() {
            let comma = if i + 1 < farm.lanes.len() { "," } else { "" };
            json.push_str(&format!(
                "      {{ \"threads\": {}, \"worlds_per_sec\": {:.1}, \
                 \"farm_sim_cycles_per_sec\": {:.0}, \"critical_path_ms\": {:.3}, \
                 \"wall_ms\": {:.3}, \"wall_worlds_per_sec\": {:.1} }}{comma}\n",
                lane.threads,
                lane.worlds_per_sec,
                lane.farm_sim_cycles_per_sec,
                lane.critical_path_secs * 1e3,
                lane.wall_secs * 1e3,
                lane.wall_worlds_per_sec,
            ));
        }
        json.push_str("    ]\n");
        json.push_str("  },\n");
    }
    json.push_str("  \"speedups\": {\n");
    for c in &comparisons {
        // The pipeline_overlap entry below always follows.
        json.push_str(&format!(
            "    \"{}\": {{ \"label\": \"{}\", \"legacy_ns_per_iter\": {:.1}, \"current_ns_per_iter\": {:.1}, \"speedup\": {:.3} }},\n",
            c.key,
            json_escape(c.label),
            c.legacy.nanos_per_iter(),
            c.current.nanos_per_iter(),
            c.speedup()
        ));
    }
    json.push_str(&format!(
        "    \"pipeline_overlap\": {{ \"label\": \"staged frame: pipeline vs sequential stages (simulated cycles)\", \"sequential_cycles\": {pipe_seq_cycles}, \"pipeline_cycles\": {pipe_par_cycles}, \"speedup\": {pipeline_overlap:.3} }},\n"
    ));
    json.push_str(&format!(
        "    \"graph_frontier\": {{ \"label\": \"irregular graph traversal: batched frontier gather vs naive per-edge derefs (simulated cycles)\", \"naive_cycles\": {graph_naive_cycles}, \"gather_cycles\": {graph_gather_cycles}, \"speedup\": {graph_frontier:.3} }},\n"
    ));
    {
        let comma = if farm_bench.is_some() { "," } else { "" };
        json.push_str(&format!(
            "    \"mode_elision\": {{ \"label\": \"read-only tile: `reads`-declared flush elision vs undeclared (simulated cycles)\", \"undeclared_cycles\": {mode_undecl_cycles}, \"declared_cycles\": {mode_decl_cycles}, \"speedup\": {mode_elision:.3} }}{comma}\n"
        ));
    }
    if let Some(farm) = &farm_bench {
        json.push_str(&format!(
            "    \"farm_scaling_2t\": {{ \"label\": \"sim farm critical-path scaling, 2 workers vs 1\", \"speedup\": {:.3} }},\n",
            farm.scaling(2)
        ));
        json.push_str(&format!(
            "    \"farm_scaling_4t\": {{ \"label\": \"sim farm critical-path scaling, 4 workers vs 1\", \"speedup\": {:.3} }}\n",
            farm.scaling(4)
        ));
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("report is writable");
    println!("wrote {out_path}");
    print!("{json}");

    if let Some((baseline_path, max_regress)) = args.check {
        eprintln!("perf-regression budget vs {baseline_path}");
        let code = run_check(&json, &baseline_path, max_regress);
        if code != 0 {
            std::process::exit(code);
        }
    }
}
