//! Determinism regression: same inputs, bit-identical outcomes.
//!
//! The whole reproduction rests on the simulator being a deterministic
//! function of its inputs — experiment tables are diffed against the
//! paper's claims, and the throughput overhaul was validated by
//! checking cycle counts stayed bit-identical. This test pins that
//! property: experiment tables, VM runs (exit value, cycle count,
//! instruction count, printed output), and machine event logs must be
//! identical across repeated runs.

use bench::exp;
use offload_lang::{compile, Target, Vm};
use simcell::{Machine, MachineConfig};

#[test]
fn experiment_tables_are_identical_across_runs() {
    // E1 exercises the DMA styles (the reworked per-tag rings), E6 the
    // accessor loop (the reworked bulk transfers).
    assert_eq!(
        exp::e01_dma_styles::run(true).to_string(),
        exp::e01_dma_styles::run(true).to_string(),
        "E1 must be a pure function of its inputs"
    );
    assert_eq!(
        exp::e06_accessor_loop::run(true).to_string(),
        exp::e06_accessor_loop::run(true).to_string(),
        "E6 must be a pure function of its inputs"
    );
    // E18 exercises the gather engine and the reuse-distance autotuner
    // on the irregular graph workload.
    assert_eq!(
        exp::e18_graph::run(true).to_string(),
        exp::e18_graph::run(true).to_string(),
        "E18 must be a pure function of its inputs"
    );
}

const PROGRAM: &str = r#"
    class Entity {
        hp: float;
        virtual fn tick(d: float) { self.hp = self.hp - d; }
    }
    class Enemy : Entity {
        override fn tick(d: float) { self.hp = self.hp - d - d; }
    }
    var e: Entity*;
    var f: Entity*;
    fn main() -> int {
        e = new Enemy;
        f = new Entity;
        e.hp = 100.0;
        f.hp = 100.0;
        let i: int = 0;
        while i < 5 {
            offload domain(Entity.tick, Enemy.tick) {
                e.tick(1.0);
                f.tick(1.0);
            }
            i = i + 1;
        }
        print_int(float_to_int(e.hp));
        print_int(float_to_int(f.hp));
        return float_to_int(e.hp + f.hp);
    }
"#;

struct RunRecord {
    exit: i32,
    cycles: u64,
    instructions: u64,
    output: Vec<String>,
    events: Vec<String>,
}

fn run_once() -> RunRecord {
    let program = compile(PROGRAM, &Target::cell_like()).expect("compiles");
    let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
    machine.events_mut().set_enabled(true);
    let mut vm = Vm::new(&program, &mut machine).expect("program fits");
    let exit = vm.run(&mut machine).expect("program runs");
    RunRecord {
        exit,
        cycles: machine.host_now(),
        instructions: vm.instructions_executed(),
        output: vm.output().to_vec(),
        events: machine
            .events()
            .events()
            .iter()
            .map(|e| e.to_string())
            .collect(),
    }
}

#[test]
fn paper_tables_quick_matches_the_committed_golden_output() {
    // The same diff CI's determinism gate performs: two runs of the
    // real binary must agree with each other and with the checked-in
    // golden transcript. Any cycle-count drift — intended or not —
    // shows up as a diff and must be re-committed deliberately
    // (regenerate with `cargo run --release -p bench --bin paper_tables
    // -- --quick > tests/golden/paper_tables_quick.txt`).
    let exe = env!("CARGO_BIN_EXE_paper_tables");
    let run = || {
        let out = std::process::Command::new(exe)
            .arg("--quick")
            .output()
            .expect("paper_tables runs");
        assert!(out.status.success(), "paper_tables --quick failed");
        String::from_utf8(out.stdout).expect("tables are UTF-8")
    };
    let first = run();
    assert_eq!(first, run(), "paper_tables --quick diverged between runs");
    let golden = include_str!("../../../tests/golden/paper_tables_quick.txt");
    assert_eq!(
        first, golden,
        "paper_tables --quick drifted from tests/golden/paper_tables_quick.txt"
    );
}

#[test]
fn vm_runs_are_identical_down_to_the_event_log() {
    let a = run_once();
    let b = run_once();
    assert_eq!(a.exit, b.exit, "exit values diverge");
    assert_eq!(a.cycles, b.cycles, "cycle counts diverge");
    assert_eq!(a.instructions, b.instructions, "instruction counts diverge");
    assert_eq!(a.output, b.output, "printed output diverges");
    assert_eq!(a.events, b.events, "event logs diverge");
    // Sanity: the run actually did something worth pinning.
    assert!(a.instructions > 100, "program is non-trivial");
    assert!(
        a.events.iter().any(|e| e.contains("offload start")),
        "offloads are on the event log: {:?}",
        a.events
    );
}
