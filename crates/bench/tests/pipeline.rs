//! Property tests for the streaming pipeline — the CI half of E17's
//! bit-identity claim.
//!
//! The pipeline's contract is that overlap is *free*: for any stage
//! count, queue depth, and chunk size — and even under a fault plan
//! with the recovery stack armed — running the chain through
//! `machine.pipeline()` produces the same main-memory bytes as running
//! the stages one after another. These tests draw random shapes from a
//! seeded [`xrng::Rng`] and pin that equality, plus the determinism of
//! the trace itself (same seed → same world hash → same Chrome JSON).

use memspace::Addr;
use offload_rt::pipeline::MachinePipelineExt;
use offload_rt::stream::{process_stream, StreamConfig};
use offload_rt::PipeReport;
use simcell::{AccelCtx, FaultPlan, Machine, MachineConfig, SimError};
use xrng::Rng;

/// One randomly drawn pipeline shape.
#[derive(Clone, Copy, Debug)]
struct Shape {
    len: u32,
    chunk: u32,
    stages: u16,
    buffers: u32,
}

/// Draws a shape the default machine (6 accelerators) can always run:
/// 1–4 stages, 1–4 buffered chunks per queue, chunk sizes from single
/// elements up to larger than the whole stream.
fn draw(rng: &mut Rng) -> Shape {
    Shape {
        len: rng.range_u32(1, 600),
        chunk: rng.range_u32(1, 96),
        stages: rng.range_u32(1, 5) as u16,
        buffers: rng.range_u32(1, 5),
    }
}

/// Stage `k`'s element-local transform: fixed wrapping arithmetic keyed
/// on the stage index and the element's global index, so every
/// chunking/ordering of the stream yields the same bytes and a
/// misrouted index shows up as a hash mismatch.
fn stage_fn(k: u16) -> impl FnMut(&mut AccelCtx<'_>, u32, &mut [u32]) -> Result<(), SimError> {
    let mul = 2 * u32::from(k) + 3;
    let add = 0x9e37_79b9u32.wrapping_mul(u32::from(k) + 1);
    move |ctx, first, slice| {
        for (i, v) in slice.iter_mut().enumerate() {
            let idx = first + i as u32;
            *v = v.wrapping_mul(mul).wrapping_add(add) ^ idx.rotate_left(u32::from(k) % 31 + 1);
        }
        ctx.compute(50 * slice.len() as u64);
        Ok(())
    }
}

/// A fresh machine holding `len` seeded words in main memory.
fn seeded_world(seed: u64, len: u32) -> (Machine, Addr) {
    let mut machine = Machine::new(MachineConfig::default()).expect("config valid");
    let addr = machine.alloc_main_slice::<u32>(len).expect("fits");
    let mut rng = Rng::new(seed);
    let values: Vec<u32> = (0..len).map(|_| rng.next_u32()).collect();
    machine
        .main_mut()
        .write_pod_slice(addr, &values)
        .expect("in bounds");
    (machine, addr)
}

/// The reference schedule: each stage is one offload on accelerator 0
/// streaming the whole array, full barrier between stages — the
/// definition the pipeline must match bit for bit.
fn run_sequential(machine: &mut Machine, addr: Addr, shape: Shape) -> u64 {
    let t0 = machine.host_now();
    let config = StreamConfig {
        chunk_elems: (shape.chunk / 2).max(1),
        write_back: true,
    };
    for k in 0..shape.stages {
        let mut f = stage_fn(k);
        machine
            .offload(0)
            .label("seq-stage")
            .run(|ctx| process_stream::<u32, _>(ctx, addr, shape.len, config, &mut f))
            .expect("offload runs")
            .expect("stream runs");
    }
    machine.host_now() - t0
}

/// Runs the same stage chain through the pipeline builder, optionally
/// under a fault plan with the full retry + host-fallback stack armed.
fn run_pipeline(
    machine: &mut Machine,
    addr: Addr,
    shape: Shape,
    faults: Option<FaultPlan>,
) -> PipeReport {
    let mut builder = machine.pipeline::<u32>();
    for k in 0..shape.stages {
        builder = builder.stage_named("pipe-stage", stage_fn(k));
    }
    builder = builder.chunk(shape.chunk).buffers(shape.buffers);
    if let Some(plan) = faults {
        builder = builder.faults(plan).retry(4).backoff(800).fallback_host();
    }
    builder.run(addr, shape.len).expect("pipeline runs")
}

/// The core property: for random stage counts, buffer depths and chunk
/// sizes, pipeline execution leaves main memory bit-identical to the
/// sequential stage-by-stage schedule.
#[test]
fn pipeline_matches_sequential_for_random_shapes() {
    let mut rng = Rng::new(0x17_917E);
    for round in 0..16u64 {
        let shape = draw(&mut rng);
        let world_seed = 0xB00 + round;
        let (mut seq, seq_addr) = seeded_world(world_seed, shape.len);
        run_sequential(&mut seq, seq_addr, shape);
        let (mut pipe, pipe_addr) = seeded_world(world_seed, shape.len);
        let report = run_pipeline(&mut pipe, pipe_addr, shape, None);
        assert_eq!(
            seq.memory_hash(),
            pipe.memory_hash(),
            "worlds diverged at {shape:?} (report: {report:?})"
        );
        assert_eq!(pipe.races_detected(), 0, "no races at {shape:?}");
        assert_eq!(
            u64::from(report.chunks) * u64::from(report.stages),
            u64::from(shape.len.div_ceil(shape.chunk)) * u64::from(shape.stages),
            "every chunk ran once per stage at {shape:?}"
        );
    }
}

/// The same property under fire: a seeded uniform fault plan injects
/// transient and fatal faults mid-stream, retries replay chunks from a
/// clean mark, dead lanes degrade to the host — and the bytes still
/// match the faultless sequential run exactly.
#[test]
fn faulted_pipeline_still_matches_sequential() {
    let mut rng = Rng::new(0xFA_017E);
    for round in 0..8u64 {
        let shape = draw(&mut rng);
        let world_seed = 0xF00 + round;
        let (mut seq, seq_addr) = seeded_world(world_seed, shape.len);
        run_sequential(&mut seq, seq_addr, shape);
        let (mut pipe, pipe_addr) = seeded_world(world_seed, shape.len);
        let plan = FaultPlan::uniform(0xDEC0 + round, 0.04);
        let report = run_pipeline(&mut pipe, pipe_addr, shape, Some(plan));
        assert_eq!(
            seq.memory_hash(),
            pipe.memory_hash(),
            "recovery must be exact at {shape:?} (report: {report:?})"
        );
    }
}

/// Determinism of the run *and* its observability: the same seed gives
/// the same world hash, the same report, and byte-identical Chrome
/// trace JSON — and recording the trace costs zero simulated cycles.
#[test]
fn same_seed_same_world_hash_same_trace_json() {
    let mut rng = Rng::new(0x7_2ACE);
    let shape = draw(&mut rng);
    let run_traced = |trace: bool| {
        let (mut machine, addr) = seeded_world(0xCAFE, shape.len);
        machine.events_mut().set_enabled(trace);
        let report = run_pipeline(&mut machine, addr, shape, None);
        let json = simcell::chrome_trace_json(machine.events());
        (machine.world_hash(), report, json)
    };
    let (hash_a, report_a, json_a) = run_traced(true);
    let (hash_b, report_b, json_b) = run_traced(true);
    assert_eq!(hash_a, hash_b, "same seed, same world hash");
    assert_eq!(report_a, report_b, "same seed, same report");
    assert_eq!(json_a, json_b, "same seed, byte-identical trace JSON");
    let parsed = simcell::parse_chrome_trace(&json_a).expect("trace round-trips");
    assert!(!parsed.is_empty());

    let (hash_untraced, report_untraced, _) = run_traced(false);
    assert_eq!(hash_a, hash_untraced, "tracing is zero simulated cost");
    assert_eq!(report_a, report_untraced);
}
