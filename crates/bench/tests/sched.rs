//! Integration tests for the tile scheduler (E14/E15).
//!
//! Pins the two guarantees the scheduler ships with: the static policy
//! is bit-identical to the hand-rolled one-offload-per-accelerator
//! split the golden E14 numbers were produced by, and work stealing
//! never loses cycles to static on *any* tile-cost vector (its steal
//! guard only takes strictly-profitable steals).

use bench::exp::{e14_multi_accel, e15_sched_policies};
use offload_rt::sched::{SchedExt, SchedPolicy};
use simcell::{Machine, MachineConfig};
use xrng::Rng;

/// The golden E14 cycle counts (static split). These are the exact
/// numbers in `tests/golden/paper_tables_quick.txt` and the published
/// full-size table; the scheduler rework must not move them.
#[test]
fn static_policy_reproduces_the_golden_e14_cycles_bit_identically() {
    const QUICK: [u64; 6] = [281_548, 144_444, 99_744, 77_724, 65_424, 57_444];
    const FULL: [u64; 6] = [560_396, 284_924, 194_324, 149_020, 122_680, 105_520];
    for (i, &want) in QUICK.iter().enumerate() {
        let got = e14_multi_accel::measure(512, i as u16 + 1);
        assert_eq!(got, want, "quick E14, {} accels", i + 1);
    }
    for (i, &want) in FULL.iter().enumerate() {
        let got = e14_multi_accel::measure(1024, i as u16 + 1);
        assert_eq!(got, want, "full E14, {} accels", i + 1);
    }
}

fn run_policy(policy: SchedPolicy, costs: &[u64], accels: u16) -> u64 {
    let mut m = Machine::new(MachineConfig::default()).unwrap();
    let t0 = m.host_now();
    m.offload(0)
        .sched(policy)
        .accels(accels)
        .run_tiles(costs.len() as u32, |ctx, tile| {
            ctx.compute(costs[tile as usize]);
            Ok(())
        })
        .unwrap();
    m.host_now() - t0
}

/// The work-stealing safety property: over random tile-cost vectors
/// (costs dominating the per-launch overheads, as real tiles do), the
/// stealing schedule never takes more cycles than the static split —
/// the steal guard only moves a tile when the thief finishes it
/// strictly earlier than the victim could have started it.
#[test]
fn work_stealing_never_exceeds_static_on_random_cost_vectors() {
    let mut rng = Rng::new(0x05EE_D15E);
    let mut stole_somewhere = false;
    for case in 0..200 {
        let tiles = rng.range_u32(1, 33);
        let accels = rng.range_u32(1, 7) as u16;
        let costs: Vec<u64> = (0..tiles)
            .map(|_| u64::from(rng.range_u32(20_000, 200_001)))
            .collect();
        let st = run_policy(SchedPolicy::Static, &costs, accels);
        let ws = run_policy(SchedPolicy::WorkStealing, &costs, accels);
        assert!(
            ws <= st,
            "case {case}: work stealing lost cycles ({ws} vs {st}) on \
             tiles={tiles} accels={accels} costs={costs:?}"
        );
        stole_somewhere |= ws < st;
    }
    assert!(
        stole_somewhere,
        "200 random skews must contain at least one profitable steal"
    );
}

/// On uniform cost vectors with a balanced split (tile count a
/// multiple of the lane count) no steal is profitable and the policies
/// are bit-identical, not merely close. (An *unbalanced* uniform split
/// — 21 tiles over 6 lanes — leaves some queues one tile deeper, and
/// stealing that surplus is exactly the right call; the safety
/// property above covers those.)
#[test]
fn work_stealing_is_bit_identical_to_static_on_balanced_uniform_tiles() {
    let mut rng = Rng::new(0x0E14_0E15);
    for _ in 0..32 {
        let accels = rng.range_u32(1, 7) as u16;
        let tiles = u32::from(accels) * rng.range_u32(1, 5);
        let cost = u64::from(rng.range_u32(20_000, 200_001));
        let costs = vec![cost; tiles as usize];
        assert_eq!(
            run_policy(SchedPolicy::Static, &costs, accels),
            run_policy(SchedPolicy::WorkStealing, &costs, accels),
            "tiles={tiles} accels={accels} cost={cost}"
        );
    }
}

/// The E15 acceptance bar, as an always-on regression: on the skewed
/// frame, work stealing beats static by at least 20% simulated cycles
/// with an identical world.
#[test]
fn e15_work_stealing_beats_static_by_twenty_percent() {
    let (st, st_world) = e15_sched_policies::measure(512, SchedPolicy::Static);
    let (ws, ws_world) = e15_sched_policies::measure(512, SchedPolicy::WorkStealing);
    assert_eq!(ws_world, st_world);
    assert!(
        ws.cycles * 5 <= st.cycles * 4,
        "{} vs {}",
        ws.cycles,
        st.cycles
    );
}
