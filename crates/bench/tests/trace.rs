//! Integration tests for the tracing & profiling layer.
//!
//! Pins the properties `PROFILING.md` relies on: traces are valid Chrome
//! trace-event JSON, the Figure 2 overlap is visible in the exported
//! lanes, tracing is zero simulated cost and allocation-free when
//! disabled, and the always-on counters agree with the event log.

use bench::profile::{
    traced_e2_frame, traced_e2_frame_cycles, traced_fault_frame, traced_pipe_frame,
    traced_sched_frame,
};
use simcell::trace::{accel_tid, dma_tid, fault_tid, pipe_tid, sched_tid};
use simcell::{
    chrome_trace_json, parse_chrome_trace, ChromeEvent, EventKind, Machine, MachineConfig,
};

#[test]
fn events_sort_into_cycle_order() {
    let (machine, _) = traced_e2_frame(true);
    let sorted = machine.events().sorted();
    assert!(!sorted.is_empty());
    assert!(
        sorted.windows(2).all(|w| w[0].at <= w[1].at),
        "sorted() must be non-decreasing in cycle"
    );
}

#[test]
fn disabled_log_never_allocates_across_a_full_frame() {
    let (machine, _) = traced_e2_frame(false);
    assert_eq!(machine.events().len(), 0);
    assert_eq!(
        machine.events().capacity(),
        0,
        "a frame with tracing off must not grow the log's backing storage"
    );
}

#[test]
fn tracing_is_zero_simulated_cost() {
    let (traced_machine, traced) = traced_e2_frame(true);
    let untraced_cycles = traced_e2_frame_cycles();
    assert_eq!(
        traced.host_cycles, untraced_cycles,
        "recording must never advance a simulated clock"
    );
    assert!(!traced_machine.events().is_empty());
}

#[test]
fn chrome_json_round_trips_through_the_parser() {
    let (machine, _) = traced_e2_frame(true);
    let json = chrome_trace_json(machine.events());
    let parsed = parse_chrome_trace(&json).expect("exporter emits parseable JSON");
    // Every recorded event surfaces (lifecycle pairs collapse 2 -> 1,
    // metadata rows add a few), so the counts are the same order.
    assert!(parsed.len() >= machine.events().len() / 2);
    assert!(parsed
        .iter()
        .any(|e| e.ph == 'M' && e.name == "thread_name"));
    assert!(parsed.iter().any(|e| e.ph == 'X'));
}

/// The acceptance criterion: in `paper_tables --trace e2.json`, the
/// host's `detectCollisions` span overlaps the accelerator's
/// `calculateStrategy` offload slice — Figure 2's parallelism, visible
/// in the trace.
#[test]
fn figure2_overlap_is_visible_in_the_trace() {
    let (machine, _) = traced_e2_frame(true);
    let json = chrome_trace_json(machine.events());
    let parsed = parse_chrome_trace(&json).expect("valid JSON");

    let strategy = parsed
        .iter()
        .find(|e| e.ph == 'X' && e.name == "calculateStrategy" && e.tid == accel_tid(0))
        .expect("offloaded calculateStrategy becomes a complete slice on the accel lane");

    // detectCollisions is a begin/end pair on the host lane (tid 0).
    let begin = parsed
        .iter()
        .find(|e| e.ph == 'B' && e.name == "detectCollisions" && e.tid == 0)
        .expect("host detectCollisions begin");
    let end = parsed
        .iter()
        .find(|e| e.ph == 'E' && e.name == "detectCollisions" && e.tid == 0)
        .expect("host detectCollisions end");
    let detect = ChromeEvent {
        name: begin.name.clone(),
        ph: 'X',
        ts: begin.ts,
        dur: Some(end.ts - begin.ts),
        tid: begin.tid,
    };

    assert!(
        strategy.overlaps(&detect),
        "host detectCollisions [{}, {}] must overlap accel calculateStrategy [{}, {}]",
        detect.ts,
        detect.end(),
        strategy.ts,
        strategy.end(),
    );

    // The AI task's bulk fetches appear on the DMA lane.
    assert!(
        parsed
            .iter()
            .any(|e| e.ph == 'X' && e.name == "dma_get" && e.tid == dma_tid(0)),
        "accessor fetches must appear as dma_get slices on the DMA lane"
    );
}

/// The scheduler-lane half of the `--trace` smoke test: a traced
/// work-stealing E15 frame exports one `sched N` lane per accelerator,
/// its tile slices, idle gaps and steal instants survive the
/// parse_chrome_trace round trip, and the tile slices account for
/// every dispatched tile.
#[test]
fn scheduler_lanes_round_trip_through_the_chrome_parser() {
    let (machine, report) = traced_sched_frame(true);
    let json = chrome_trace_json(machine.events());
    let parsed = parse_chrome_trace(&json).expect("valid JSON");

    for lane in 0..report.accels {
        assert!(
            parsed
                .iter()
                .any(|e| e.ph == 'M' && e.name == "thread_name" && e.tid == sched_tid(lane)),
            "scheduler lane {lane} must be named in the export"
        );
    }
    let tile_slices = parsed
        .iter()
        .filter(|e| e.ph == 'X' && e.name.starts_with("tile ") && e.tid >= sched_tid(0))
        .count();
    assert_eq!(
        tile_slices as u32, report.tiles,
        "every dispatched tile becomes one scheduler-lane slice"
    );
    assert!(
        parsed
            .iter()
            .any(|e| e.ph == 'X' && e.name == "idle" && e.tid >= sched_tid(0)),
        "the skewed frame leaves visible idle gaps"
    );
    let steal_instants = parsed
        .iter()
        .filter(|e| e.ph == 'i' && e.name == "steal")
        .count();
    assert_eq!(steal_instants as u32, report.steals);

    // Tracing the schedule costs zero simulated cycles.
    let (_, untraced) = traced_sched_frame(false);
    assert_eq!(report.cycles, untraced.cycles);
}

/// The fault-lane half of the `--trace` smoke test: a traced E16 frame
/// under fire exports a named `faults N` lane for every accelerator the
/// plan hit, every injection and recovery instant survives the
/// parse_chrome_trace round trip, and the instant counts agree with the
/// scheduler report's always-on counters.
#[test]
fn fault_lanes_round_trip_through_the_chrome_parser() {
    let (machine, report) = traced_fault_frame(true);
    assert!(report.faults > 0, "the 5% plan must inject");
    let json = chrome_trace_json(machine.events());
    let parsed = parse_chrome_trace(&json).expect("valid JSON");

    assert!(
        parsed
            .iter()
            .any(|e| e.ph == 'M' && e.name == "thread_name" && e.tid >= fault_tid(0)),
        "every accelerator the plan hit gets a named faults lane"
    );
    let injections = parsed
        .iter()
        .filter(|e| e.ph == 'i' && e.tid >= fault_tid(0))
        .filter(|e| {
            matches!(
                e.name.as_str(),
                "dma_corrupt"
                    | "dma_drop"
                    | "tag_timeout"
                    | "accel_stall"
                    | "accel_death"
                    | "ls_poison"
            )
        })
        .count();
    assert_eq!(
        injections as u64, report.faults,
        "every injected fault becomes one instant on a fault lane"
    );
    let retries = parsed
        .iter()
        .filter(|e| e.ph == 'i' && e.name == "retry" && e.tid >= fault_tid(0))
        .count();
    assert_eq!(retries as u64, report.retries);

    // Tracing the frame under fire costs zero simulated cycles.
    let (_, untraced) = traced_fault_frame(false);
    assert_eq!(report.cycles, untraced.cycles);
}

/// The pipeline-lane half of the `--trace` smoke test: a traced E17
/// staged frame exports one `pipe N` lane per stage accelerator, every
/// chunk run and stall slice survives the parse_chrome_trace round
/// trip, and the slice counts agree with the report's always-on
/// counters.
#[test]
fn pipeline_lanes_round_trip_through_the_chrome_parser() {
    let (machine, report) = traced_pipe_frame(true);
    let json = chrome_trace_json(machine.events());
    let parsed = parse_chrome_trace(&json).expect("valid JSON");

    for lane in &report.lanes {
        assert!(
            parsed
                .iter()
                .any(|e| e.ph == 'M' && e.name == "thread_name" && e.tid == pipe_tid(lane.accel)),
            "pipeline lane for accel {} must be named in the export",
            lane.accel
        );
    }
    let chunk_slices = parsed
        .iter()
        .filter(|e| e.ph == 'X' && e.name.starts_with("s") && e.tid >= pipe_tid(0))
        .filter(|e| e.name.contains(" chunk "))
        .count();
    assert_eq!(
        chunk_slices as u64,
        u64::from(report.stages) * u64::from(report.chunks),
        "every per-stage chunk run becomes one pipeline-lane slice"
    );
    assert!(
        parsed
            .iter()
            .any(|e| e.ph == 'X' && e.name == "input wait" && e.tid >= pipe_tid(0)),
        "the staged frame's uneven stage costs leave visible input-wait stalls"
    );

    // Tracing the pipeline costs zero simulated cycles.
    let (_, untraced) = traced_pipe_frame(false);
    assert_eq!(report, untraced);
}

#[test]
fn machine_stats_agree_with_logged_dma_events() {
    let (machine, _) = traced_e2_frame(true);
    let stats = machine.stats();
    let (mut gets, mut puts, mut to_local, mut from_local) = (0u64, 0u64, 0u64, 0u64);
    for e in machine.events().events() {
        if let EventKind::DmaIssue { bytes, dir, .. } = e.kind {
            match dir {
                dma::DmaDirection::Get => {
                    gets += 1;
                    to_local += u64::from(bytes);
                }
                dma::DmaDirection::Put => {
                    puts += 1;
                    from_local += u64::from(bytes);
                }
            }
        }
    }
    assert_eq!(stats.dma_gets, gets);
    assert_eq!(stats.dma_puts, puts);
    assert_eq!(stats.dma_bytes_to_local, to_local);
    assert_eq!(stats.dma_bytes_from_local, from_local);
    assert_eq!(stats.dma_bytes_total(), to_local + from_local);
}

#[test]
fn machine_stats_agree_with_logged_cache_events() {
    // The E2 frame uses explicit DMA, not a cache — run a cached offload
    // so the cache counters and cache events have something to agree on.
    let mut machine = Machine::new(MachineConfig::small()).unwrap();
    machine.events_mut().set_enabled(true);
    let remote = machine.alloc_main_slice::<u32>(1024).unwrap();
    let values: Vec<u32> = (0..1024).collect();
    machine.main_mut().write_pod_slice(remote, &values).unwrap();
    machine
        .offload(0)
        .run(|ctx| -> Result<(), simcell::SimError> {
            let mut cache = ctx.new_cache(softcache::CacheConfig::direct_mapped_4k())?;
            let mut sum = 0u64;
            for i in 0..1024u32 {
                sum += u64::from(ctx.cached_read_pod::<u32, _>(&mut cache, remote.element(i, 4)?)?);
            }
            assert_eq!(sum, (0..1024u64).sum::<u64>());
            ctx.cache_flush(&mut cache)?;
            Ok(())
        })
        .unwrap()
        .unwrap();

    let stats = machine.stats();
    assert!(stats.cache_hits > 0, "sequential reads mostly hit");
    assert!(stats.cache_misses > 0, "cold lines miss");

    let (mut hits, mut misses, mut fetched) = (0u64, 0u64, 0u64);
    for e in machine.events().events() {
        match e.kind {
            EventKind::CacheHit { count, .. } => hits += u64::from(count),
            EventKind::CacheMiss {
                count,
                bytes_fetched,
                ..
            } => {
                misses += u64::from(count);
                fetched += bytes_fetched;
            }
            _ => {}
        }
    }
    assert_eq!(stats.cache_hits, hits);
    assert_eq!(stats.cache_misses, misses);
    assert_eq!(stats.cache_bytes_fetched, fetched);
}

#[test]
fn utilization_report_reflects_the_frame() {
    let (machine, _) = traced_e2_frame(true);
    let report = machine.utilization_report();
    assert!(report.contains("utilization report"));
    assert!(report.contains("accel 0"));
    assert!(report.contains("ls high water"));
    let expected = format!("event log: {} events", machine.events().len());
    assert!(report.contains(&expected), "report: {report}");
}
