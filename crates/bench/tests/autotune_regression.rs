//! Regression pins for the trace-driven cache-policy autotuner on the
//! full-size E7/E12 workloads: the tuner must keep reaching the same
//! conclusions hand profiling reached in EXPERIMENTS.md.

use bench::autotune::{e12_options, tune_options};
use bench::exp::{e07_softcache_matrix as e07, e12_cache_crossover as e12};
use softcache::autotune::{autotune, replay_exact};
use softcache::CacheChoice;

/// Full-size E7 access count (matches `paper_tables` without `--quick`).
const FULL: u32 = 4096;

#[test]
fn e7_sequential_tunes_to_streaming() {
    let trace = e07::capture_trace("sequential", FULL);
    let report = autotune(&trace, &tune_options()).expect("search space is valid");
    let winner = report.winner();
    assert!(
        matches!(winner.choice, CacheChoice::Stream(_)),
        "sequential scans must tune to the streaming cache, got {}",
        winner.choice
    );
}

#[test]
fn e7_strided_and_hot_set_tune_to_four_way() {
    for pattern in ["strided", "hot-set"] {
        let trace = e07::capture_trace(pattern, FULL);
        let report = autotune(&trace, &tune_options()).expect("search space is valid");
        let winner = report.winner();
        match winner.choice {
            CacheChoice::SetAssoc(config) => assert_eq!(
                config.ways, 4,
                "{pattern} must tune to a 4-way cache, got {}",
                winner.choice
            ),
            ref other => panic!("{pattern} must tune to a set-associative cache, got {other}"),
        }
    }
}

#[test]
fn e12_crossover_is_at_reuse_two() {
    let opts = e12_options();
    // Single-touch sweep: every cache is pure overhead, the tuner must
    // say so.
    let trace1 = e12::capture_trace(1);
    let report1 = autotune(&trace1, &opts).expect("search space is valid");
    assert!(
        matches!(report1.winner().choice, CacheChoice::Naive),
        "reuse=1 must tune to no cache, got {}",
        report1.winner().choice
    );
    // From the second touch on, a set-associative cache wins.
    let trace2 = e12::capture_trace(2);
    let report2 = autotune(&trace2, &opts).expect("search space is valid");
    let winner = report2.winner();
    assert!(
        matches!(winner.choice, CacheChoice::SetAssoc(_)),
        "reuse=2 must tune to a set-associative cache, got {}",
        winner.choice
    );
    let naive = replay_exact(&CacheChoice::Naive, &trace2, &opts).expect("replay succeeds");
    assert!(
        winner.exact_cycles.expect("winner validated") < naive,
        "the tuned cache must beat naive from reuse=2"
    );
}

#[test]
fn quick_mode_reports_agree_end_to_end() {
    // The full `--autotune` front-end (capture, measure, replay
    // bit-identically, family agreement) in quick mode; its internal
    // asserts are the gate.
    let e7 = bench::autotune::e7_report(true);
    assert_eq!(e7.rows.len(), 4);
    assert!(e7.rows.iter().all(|r| r.last().unwrap() == "yes"));
    let e12 = bench::autotune::e12_report(true);
    assert_eq!(e12.rows.len(), 2);
    assert!(e12.rows.iter().all(|r| r.last().unwrap() == "yes"));
}
