//! Mode-misuse and mode-identity property tests — the CI half of the
//! access-mode redesign's safety claim.
//!
//! Declaring access modes buys cheaper recovery (journal skips, elided
//! write-backs), but only because the runtime *enforces* them: a put
//! outside every declared `write`/`update` range, or a genuine
//! mutation of a `reads`-declared buffer, is an [`SimError::UndeclaredWrite`]
//! and a race note, not a silent scribble. These tests pin the
//! rejection paths, and a seeded [`xrng::Rng`] property test pins the
//! other half of the contract: under random fault seeds and rates,
//! with the full retry/evict/host-fallback recovery stack armed, the
//! mode-annotated frame produces the undeclared frame's world
//! bit-for-bit while journaling no more bytes.

use bench::exp::e16_fault_recovery::{self, measure_buffered};
use gamekit::{ai_frame_sched_recovering_buffered, AiConfig, EntityArray, WorldGen};
use memspace::AccessMode;
use offload_rt::sched::SchedPolicy;
use offload_rt::{ArrayAccessor, RemoteSlice};
use simcell::{FaultPlan, Machine, MachineConfig, SimError};
use xrng::Rng;

const LEN: u32 = 64;

/// A small machine with `LEN` seeded words in main memory.
fn seeded_machine() -> (Machine, memspace::Addr) {
    let mut machine = Machine::new(MachineConfig::small()).expect("config valid");
    let addr = machine.alloc_main_slice::<u32>(LEN).expect("fits");
    let values: Vec<u32> = (0..LEN).map(|v| v.wrapping_mul(31) ^ 7).collect();
    machine
        .main_mut()
        .write_pod_slice(addr, &values)
        .expect("fits");
    (machine, addr)
}

#[test]
fn put_outside_every_declared_range_is_rejected() {
    let (mut machine, input) = seeded_machine();
    let output = machine.alloc_main_slice::<u32>(LEN).expect("fits");
    // The offload declares its input but forgets the output entirely.
    // The moment any range is declared, the mode set is strict: the
    // output put must be rejected, not silently allowed.
    let result = machine
        .offload(0)
        .label("forgot the output")
        .reads(input, LEN * 4)
        .run(|ctx| {
            let tile = ArrayAccessor::<u32>::fetch(ctx, input, LEN)?;
            let mut out = ArrayAccessor::<u32>::for_output(ctx, output, LEN)?;
            for i in 0..LEN {
                let v = tile.get(ctx, i)?;
                out.set(ctx, i, &v.wrapping_add(1))?;
            }
            out.write_back(ctx)
        })
        .expect("accel 0 exists");
    match result {
        Err(SimError::UndeclaredWrite { declared, .. }) => {
            assert_eq!(declared, None, "the output range was never declared")
        }
        other => panic!("undeclared put must be rejected, got {other:?}"),
    }
    assert!(
        machine.races_detected() > 0,
        "the race analyzer must log the undeclared write"
    );
}

#[test]
fn mutating_a_reads_declared_buffer_is_rejected() {
    let (mut machine, addr) = seeded_machine();
    // The offload swears the buffer is read-only, then genuinely
    // mutates it. The write-back is not elidable — the bytes differ —
    // so the race analyzer rejects it instead of letting the broken
    // declaration corrupt main memory.
    let result = machine
        .offload(0)
        .label("lying reads declaration")
        .reads(addr, LEN * 4)
        .run(|ctx| {
            let mut tile = ArrayAccessor::<u32>::fetch(ctx, addr, LEN)?;
            let v = tile.get(ctx, 3)?;
            tile.set(ctx, 3, &v.wrapping_add(1))?;
            tile.write_back(ctx)
        })
        .expect("accel 0 exists");
    match result {
        Err(SimError::UndeclaredWrite { declared, .. }) => {
            assert_eq!(declared, Some(AccessMode::Read))
        }
        other => panic!("a mutated `reads` buffer must be rejected, got {other:?}"),
    }
    assert!(machine.races_detected() > 0);
    assert_eq!(
        machine.stats().dma_writebacks_elided,
        0,
        "a differing buffer must never be elided"
    );
}

#[test]
fn conservative_flush_of_untouched_reads_buffer_is_elided() {
    let (mut machine, addr) = seeded_machine();
    let before: Vec<u32> = machine.main().read_pod_slice(addr, LEN).expect("fits");
    machine
        .offload(0)
        .label("honest reads declaration")
        .reads(addr, LEN * 4)
        .run(|ctx| {
            let mut tile = ArrayAccessor::<u32>::fetch(ctx, addr, LEN)?;
            // Dirty-but-unchanged: the defensive rewrite stores the
            // value each slot already holds.
            for i in 0..LEN {
                let v = tile.get(ctx, i)?;
                tile.set(ctx, i, &v)?;
            }
            tile.write_back(ctx)
        })
        .expect("accel 0 exists")
        .expect("elided flush succeeds");
    assert_eq!(machine.stats().dma_writebacks_elided, 1);
    assert_eq!(
        machine.stats().dma_writeback_bytes_elided,
        u64::from(LEN) * 4
    );
    assert_eq!(machine.races_detected(), 0);
    let after: Vec<u32> = machine.main().read_pod_slice(addr, LEN).expect("fits");
    assert_eq!(before, after);
}

/// Runs the double-buffered recovering AI frame with a caller-chosen
/// fault seed, with or without mode declarations.
fn buffered_frame(
    n: u32,
    seed: u64,
    rate: f32,
    declare_modes: bool,
) -> (Vec<gamekit::GameEntity>, u64, u64) {
    let config = AiConfig::default();
    let mut machine = Machine::new(MachineConfig::default()).expect("config valid");
    let entities = EntityArray::alloc(&mut machine, n).expect("fits");
    let out = EntityArray::alloc(&mut machine, n).expect("fits");
    let mut gen = WorldGen::new(seed);
    gen.populate(&mut machine, &entities, 70.0).expect("fits");
    let table = gen
        .candidate_table(&mut machine, n, config.candidates)
        .expect("fits");
    let report = ai_frame_sched_recovering_buffered(
        &mut machine,
        &entities,
        &out,
        table,
        &config,
        e16_fault_recovery::ACCELS,
        e16_fault_recovery::TILES,
        SchedPolicy::WorkStealing,
        FaultPlan::uniform(seed ^ 0xFA11, rate),
        e16_fault_recovery::RETRIES,
        e16_fault_recovery::BACKOFF,
        declare_modes,
    )
    .expect("recovery absorbs every fault");
    assert_eq!(machine.races_detected(), 0);
    let world = out.snapshot(&machine).expect("snapshot reads");
    (world, machine.stats().journal_bytes, report.cycles)
}

/// The identity property: for random worlds, fault seeds, and fault
/// rates — retries, evictions, and host fallbacks all in play — mode
/// declarations never change a byte of the world and never journal
/// more than the undeclared run.
#[test]
fn modes_replay_bit_identically_under_random_fault_storms() {
    let mut rng = Rng::new(0x40DE5);
    for round in 0..4 {
        let seed = rng.next_u64();
        let rate = rng.range_u32(0, 12) as f32 / 100.0;
        let n = 64 * rng.range_u32(2, 6);
        let (world_u, journal_u, cycles_u) = buffered_frame(n, seed, rate, false);
        let (world_d, journal_d, cycles_d) = buffered_frame(n, seed, rate, true);
        assert_eq!(
            world_u, world_d,
            "round {round} (seed {seed:#x}, rate {rate}): modes changed the world"
        );
        assert!(
            journal_d <= journal_u,
            "round {round}: modes must never journal more ({journal_d} vs {journal_u})"
        );
        // No cycle ordering is asserted: an elided transfer also skips
        // its fault-RNG draw, so the declared run sees a *different*
        // fault schedule and can retry more or less than the
        // undeclared one. What must hold is that its own replay is
        // exact.
        let _ = (cycles_u, cycles_d);
        // Replays of the declared run are themselves bit-identical.
        let (world_d2, journal_d2, cycles_d2) = buffered_frame(n, seed, rate, true);
        assert_eq!(world_d, world_d2);
        assert_eq!(journal_d, journal_d2);
        assert_eq!(cycles_d, cycles_d2);
    }
}

/// The E16 determinism diff the CI gate runs: the mode-annotated storm
/// vs the undeclared baseline at the table's middle rate — equal world
/// hashes, strictly fewer journal bytes, and real elided write-backs.
#[test]
fn e16_mode_annotated_storm_matches_undeclared_baseline() {
    let (_, world_u, stats_u) = measure_buffered(512, SchedPolicy::WorkStealing, 0.05, false);
    let (_, world_d, stats_d) = measure_buffered(512, SchedPolicy::WorkStealing, 0.05, true);
    assert_eq!(world_u, world_d, "world hashes must be equal");
    assert!(
        stats_d.journal_bytes < stats_u.journal_bytes,
        "modes must shrink the journal: {} vs {}",
        stats_d.journal_bytes,
        stats_u.journal_bytes
    );
    assert!(stats_d.journal_snapshots_skipped > 0);
    assert!(stats_d.dma_writeback_bytes_elided > 0);
    assert_eq!(stats_u.dma_writeback_bytes_elided, 0);
}
