//! Smoke test: the `paper_tables` binary runs end-to-end.
//!
//! Runs the real binary (not the library) at quick sizes and checks it
//! exits cleanly with every experiment table present, so a broken CLI,
//! a panicking experiment, or a dropped table shows up in `cargo test`
//! rather than only when someone regenerates the tables by hand.

use std::process::Command;

#[test]
fn quick_tables_run_end_to_end() {
    let output = Command::new(env!("CARGO_BIN_EXE_paper_tables"))
        .arg("--quick")
        .output()
        .expect("paper_tables binary runs");
    assert!(
        output.status.success(),
        "paper_tables --quick failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("tables are UTF-8");
    for exp in 1..=18 {
        assert!(
            stdout.contains(&format!("== E{exp}:")),
            "table E{exp} missing from output:\n{stdout}"
        );
    }
    assert!(stdout.contains("claim:"), "tables state the paper's claims");
}

#[test]
fn experiment_filter_selects_a_single_table() {
    let output = Command::new(env!("CARGO_BIN_EXE_paper_tables"))
        .args(["--quick", "E10"])
        .output()
        .expect("paper_tables binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("tables are UTF-8");
    assert!(stdout.contains("E10"), "requested table present:\n{stdout}");
    assert!(
        !stdout.contains("E11"),
        "unrequested tables absent:\n{stdout}"
    );
}

#[test]
fn markdown_mode_emits_markdown_tables() {
    let output = Command::new(env!("CARGO_BIN_EXE_paper_tables"))
        .args(["--quick", "--markdown", "E1"])
        .output()
        .expect("paper_tables binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("tables are UTF-8");
    assert!(
        stdout.lines().any(|l| l.trim_start().starts_with('|')),
        "markdown rows present:\n{stdout}"
    );
}
