//! Wall-time benches, one per experiment table (E1–E14).
//!
//! These measure the *wall time* of each experiment's kernel at a small
//! size, which tracks regressions in the simulator and the runtime; the
//! simulated-cycle tables themselves come from
//! `cargo run -p bench --bin paper_tables`.
//!
//! Run with `cargo bench -p bench --bench paper`. The harness is the
//! hand-rolled one in [`bench::timing`] (no external framework in this
//! container).

use std::time::Duration;

use bench::exp;
use bench::timing::{row, time, Measurement};

/// An experiment name paired with its runner.
type Runner = (&'static str, fn(bool) -> bench::Table);

fn main() {
    let budget = Duration::from_millis(100);
    let mut results: Vec<Measurement> = Vec::new();

    println!("paper_tables — per-experiment kernel wall time (quick sizes)");
    let experiments: &[Runner] = &[
        ("e01_dma_styles", exp::e01_dma_styles::run),
        ("e02_offload_overlap", exp::e02_offload_overlap::run),
        ("e03_domain_dispatch", exp::e03_domain_dispatch::run),
        (
            "e04_component_restructure",
            exp::e04_component_restructure::run,
        ),
        ("e05_ai_offload", exp::e05_ai_offload::run),
        ("e06_accessor_loop", exp::e06_accessor_loop::run),
        ("e07_softcache_matrix", exp::e07_softcache_matrix::run),
        ("e08_uniform_grouping", exp::e08_uniform_grouping::run),
        ("e09_word_addressing", exp::e09_word_addressing::run),
        ("e10_duplication", exp::e10_duplication::run),
        ("e11_race_detection", exp::e11_race_detection::run),
        ("e12_cache_crossover", exp::e12_cache_crossover::run),
        ("e13_code_loading", exp::e13_code_loading::run),
        ("e14_multi_accel", exp::e14_multi_accel::run),
        ("e15_sched_policies", exp::e15_sched_policies::run),
    ];
    for &(name, run) in experiments {
        let m = time(name, budget, || run(true));
        println!("  {}", row(&m));
        results.push(m);
    }

    println!("substrate — hot primitives the experiments lean on");
    {
        use memspace::{Addr, MemoryRegion, SpaceId, SpaceKind};

        let mut region = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 64 * 1024);
        let addr = Addr::new(SpaceId::MAIN, 128);
        let m = time("memory_region_pod_roundtrip", budget, || {
            region
                .write_pod(addr, &std::hint::black_box(0xdead_beef_u32))
                .unwrap();
            region.read_pod::<u32>(addr).unwrap()
        });
        println!("  {}", row(&m));
        results.push(m);

        let mut main_mem = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 64 * 1024);
        let mut ls = MemoryRegion::new(
            SpaceId::local_store(0),
            SpaceKind::LocalStore { accel: 0 },
            64 * 1024,
        );
        let mut engine = dma::DmaEngine::new(SpaceId::local_store(0));
        let tag = dma::Tag::new(0).unwrap();
        let local = Addr::new(SpaceId::local_store(0), 0x100);
        let remote = Addr::new(SpaceId::MAIN, 0x1000);
        let mut now = 0u64;
        let m = time("dma_get_wait", budget, || {
            now = engine
                .get(now, local, remote, 256, tag, &mut main_mem, &mut ls)
                .unwrap();
            now = engine.wait(tag.mask(), now);
            now
        });
        println!("  {}", row(&m));
        results.push(m);

        let source = r#"
            var g: int;
            fn f(p: int*) -> int { return *p + 1; }
            fn main() -> int {
                offload { g = f(&g); }
                return g;
            }
        "#;
        let target = offload_lang::Target::cell_like();
        let m = time("compile_offload_mini_program", budget, || {
            offload_lang::compile(source, &target).unwrap()
        });
        println!("  {}", row(&m));
        results.push(m);
    }

    let total: Duration = results.iter().map(|m| m.elapsed).sum();
    println!(
        "{} benches, {:.1}s measured wall time",
        results.len(),
        total.as_secs_f64()
    );
}
