//! Criterion benches, one per experiment table (E1–E14).
//!
//! These measure the *wall time* of each experiment's kernel at a small
//! size, which tracks regressions in the simulator and the runtime; the
//! simulated-cycle tables themselves come from
//! `cargo run -p bench --bin paper_tables`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::exp;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_tables");
    group.sample_size(10);

    group.bench_function("e01_dma_styles", |b| {
        b.iter(|| black_box(exp::e01_dma_styles::run(true)))
    });
    group.bench_function("e02_offload_overlap", |b| {
        b.iter(|| black_box(exp::e02_offload_overlap::run(true)))
    });
    group.bench_function("e03_domain_dispatch", |b| {
        b.iter(|| black_box(exp::e03_domain_dispatch::run(true)))
    });
    group.bench_function("e04_component_restructure", |b| {
        b.iter(|| black_box(exp::e04_component_restructure::run(true)))
    });
    group.bench_function("e05_ai_offload", |b| {
        b.iter(|| black_box(exp::e05_ai_offload::run(true)))
    });
    group.bench_function("e06_accessor_loop", |b| {
        b.iter(|| black_box(exp::e06_accessor_loop::run(true)))
    });
    group.bench_function("e07_softcache_matrix", |b| {
        b.iter(|| black_box(exp::e07_softcache_matrix::run(true)))
    });
    group.bench_function("e08_uniform_grouping", |b| {
        b.iter(|| black_box(exp::e08_uniform_grouping::run(true)))
    });
    group.bench_function("e09_word_addressing", |b| {
        b.iter(|| black_box(exp::e09_word_addressing::run(true)))
    });
    group.bench_function("e10_duplication", |b| {
        b.iter(|| black_box(exp::e10_duplication::run(true)))
    });
    group.bench_function("e11_race_detection", |b| {
        b.iter(|| black_box(exp::e11_race_detection::run(true)))
    });
    group.bench_function("e12_cache_crossover", |b| {
        b.iter(|| black_box(exp::e12_cache_crossover::run(true)))
    });
    group.bench_function("e13_code_loading", |b| {
        b.iter(|| black_box(exp::e13_code_loading::run(true)))
    });
    group.bench_function("e14_multi_accel", |b| {
        b.iter(|| black_box(exp::e14_multi_accel::run(true)))
    });
    group.finish();
}

/// Microbenchmarks of the hot substrate paths the experiments lean on.
fn bench_substrate(c: &mut Criterion) {
    use memspace::{Addr, MemoryRegion, SpaceId, SpaceKind};

    let mut group = c.benchmark_group("substrate");

    group.bench_function("memory_region_pod_roundtrip", |b| {
        let mut region = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 64 * 1024);
        let addr = Addr::new(SpaceId::MAIN, 128);
        b.iter(|| {
            region.write_pod(addr, &black_box(0xdeadbeef_u32)).unwrap();
            black_box(region.read_pod::<u32>(addr).unwrap())
        });
    });

    group.bench_function("dma_get_wait", |b| {
        let mut main = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 64 * 1024);
        let mut ls = MemoryRegion::new(
            SpaceId::local_store(0),
            SpaceKind::LocalStore { accel: 0 },
            64 * 1024,
        );
        let mut engine = dma::DmaEngine::new(SpaceId::local_store(0));
        let tag = dma::Tag::new(0).unwrap();
        let local = Addr::new(SpaceId::local_store(0), 0x100);
        let remote = Addr::new(SpaceId::MAIN, 0x1000);
        let mut now = 0u64;
        b.iter(|| {
            now = engine
                .get(now, local, remote, 256, tag, &mut main, &mut ls)
                .unwrap();
            now = engine.wait(tag.mask(), now);
            black_box(now)
        });
    });

    group.bench_function("compile_offload_mini_program", |b| {
        let source = r#"
            var g: int;
            fn f(p: int*) -> int { return *p + 1; }
            fn main() -> int {
                offload { g = f(&g); }
                return g;
            }
        "#;
        let target = offload_lang::Target::cell_like();
        b.iter(|| black_box(offload_lang::compile(source, &target).unwrap()));
    });

    group.finish();
}

criterion_group!(benches, bench_tables, bench_substrate);
criterion_main!(benches);
