//! Hot-path throughput suite: seed strategy vs current strategy.
//!
//! Times the three hot paths the allocation-free overhaul touched —
//! DMA issue/wait bookkeeping, bulk byte transfer, and VM call-path
//! argument passing — each as a faithful replica of the seed
//! implementation against the current one, on an identical workload
//! (see [`bench::hotpath`] for the replicas).
//!
//! Run with `cargo bench -p bench --bench throughput`. The JSON-emitting
//! variant of this suite is `cargo run --release -p bench --bin
//! bench_throughput`, which writes `BENCH_throughput.json`.

use std::time::Duration;

use bench::hotpath::{
    dma_ledger_legacy, dma_ledger_rings, vm_call_path_legacy, vm_call_path_sliced, CopyRig,
};
use bench::timing::{row, time};

fn main() {
    let budget = Duration::from_millis(150);

    println!("dma issue/wait bookkeeping (8 live tag groups)");
    assert_eq!(dma_ledger_legacy(512), dma_ledger_rings(512));
    let legacy = time("flat Vec + retain (seed)", budget, || {
        dma_ledger_legacy(512)
    });
    let rings = time("per-tag rings (current)", budget, || dma_ledger_rings(512));
    println!("  {}", row(&legacy));
    println!("  {}", row(&rings));
    println!("  speedup: {:.2}x", rings.speedup_over(&legacy));

    println!("bulk byte transfer (1 KiB per copy)");
    let mut rig = CopyRig::new(1024);
    assert_eq!(rig.step_legacy(), rig.step_new());
    let legacy = time("read_bytes().to_vec() (seed)", budget, || rig.step_legacy());
    let direct = time("copy_between slices (current)", budget, || rig.step_new());
    println!("  {}", row(&legacy));
    println!("  {}", row(&direct));
    println!("  speedup: {:.2}x", direct.speedup_over(&legacy));

    println!("accessor bulk read (1 KiB per read)");
    assert_eq!(rig.read_slice_legacy(), rig.read_slice_new());
    let legacy = time("fresh Vec + element loop (seed)", budget, || {
        rig.read_slice_legacy()
    });
    let reuse = time("scratch reuse + memcpy (current)", budget, || {
        rig.read_slice_new()
    });
    println!("  {}", row(&legacy));
    println!("  {}", row(&reuse));
    println!("  speedup: {:.2}x", reuse.speedup_over(&legacy));

    println!("vm call-path bookkeeping (6 ops per round)");
    assert_eq!(vm_call_path_legacy(512), vm_call_path_sliced(512));
    let legacy = time("pop into Vec + HashMap (seed)", budget, || {
        vm_call_path_legacy(512)
    });
    let sliced = time("stack split + flat slots (current)", budget, || {
        vm_call_path_sliced(512)
    });
    println!("  {}", row(&legacy));
    println!("  {}", row(&sliced));
    println!("  speedup: {:.2}x", sliced.speedup_over(&legacy));
}
