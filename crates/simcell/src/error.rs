//! Error type for the simulator.

use std::error::Error;
use std::fmt;

use dma::DmaError;
use memspace::MemError;
use softcache::CacheError;

use crate::fault::FaultError;

/// A virtual-dispatch failure, carried in [`SimError::Dispatch`].
///
/// The runtime's dispatch machinery lives in `offload_rt`, but its
/// failure taxonomy lives here so every runtime entry point can share
/// the one [`SimError`] surface (the cost side already does: see
/// `CostModel::domain_lookup_base` and friends). Fields are raw ids —
/// `target` is a function address, `duplicate` a memory-space
/// signature bitmask — formatted the way the runtime prints them.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DispatchFault {
    /// The object header named a class id that was never registered.
    UnknownClass {
        /// The raw class id read from the object.
        raw: u32,
    },
    /// The class has no implementation in the requested slot.
    NoSuchMethod {
        /// The raw class id.
        class: u32,
        /// The raw method slot.
        slot: u16,
    },
    /// The dispatch-domain lookup failed (accelerator side only).
    ///
    /// This is the paper's informative exception: it tells the
    /// programmer exactly which method annotation is missing.
    DomainMiss {
        /// The host function address that was dispatched.
        target: u32,
        /// The memory-space signature that was required (bit *i* set
        /// when pointer parameter *i* is an outer pointer).
        duplicate: u16,
        /// Whether the function was in the outer domain at all (if
        /// so, only the required duplicate is missing).
        outer_matched: bool,
        /// Outer-domain entries searched before giving up.
        outer_searched: u32,
        /// Method name, when known.
        method_name: Option<String>,
    },
}

impl fmt::Display for DispatchFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchFault::UnknownClass { raw } => {
                write!(f, "unknown class id {raw} in object header")
            }
            DispatchFault::NoSuchMethod { class, slot } => {
                write!(f, "class {class} has no method in slot {slot}")
            }
            DispatchFault::DomainMiss {
                target,
                duplicate,
                outer_matched,
                outer_searched,
                method_name,
            } => {
                let name = method_name
                    .as_deref()
                    .map(|n| format!(" ({n})"))
                    .unwrap_or_default();
                if *outer_matched {
                    write!(
                        f,
                        "dispatch-domain miss: fn@{target:#x}{name} is in the domain but no \
                         duplicate was compiled for memory-space signature dup{duplicate:#b}; \
                         annotate the offload so the compiler emits it"
                    )
                } else {
                    write!(
                        f,
                        "dispatch-domain miss: fn@{target:#x}{name} is not in the offload's \
                         domain (searched {outer_searched} entries); add it to the domain \
                         annotation so it is pre-compiled for local dispatch"
                    )
                }
            }
        }
    }
}

impl Error for DispatchFault {}

/// Errors raised by simulated-machine operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// An accelerator index beyond the configured count.
    NoSuchAccel {
        /// The requested accelerator index.
        index: u16,
        /// How many accelerators the machine has.
        count: u16,
    },
    /// A machine configuration that cannot be built.
    BadConfig {
        /// Why the configuration was rejected.
        reason: String,
    },
    /// A value too large for the context's staging buffer.
    ValueTooLarge {
        /// Size of the value in bytes.
        size: u32,
        /// Size of the staging buffer in bytes.
        staging: u32,
    },
    /// An underlying memory failure.
    Memory(MemError),
    /// An underlying DMA failure.
    Dma(DmaError),
    /// An underlying software-cache failure.
    Cache(CacheError),
    /// An injected fault observed by running code.
    Fault(FaultError),
    /// A virtual-dispatch failure.
    Dispatch(DispatchFault),
    /// A store into main memory that the offload's access-mode
    /// declarations do not license.
    ///
    /// Raised only when the offload declared at least one range via
    /// `.reads()` / `.writes()` / `.updates()`: under a non-empty
    /// [`ModeSet`](memspace::ModeSet) every put must land fully inside
    /// a declared `Write` or `Update` range. An undeclared set keeps
    /// the legacy permissive contract and never raises this.
    UndeclaredWrite {
        /// First byte of the offending store.
        addr: memspace::Addr,
        /// Length of the store in bytes.
        len: u32,
        /// The mode the covering declaration carried, if any (a store
        /// into a `read` range, versus a store outside every declared
        /// range when `None`).
        declared: Option<memspace::AccessMode>,
    },
    /// A gather from main memory that the offload's access-mode
    /// declarations do not license.
    ///
    /// The read-side twin of [`SimError::UndeclaredWrite`]: under a
    /// non-empty [`ModeSet`](memspace::ModeSet) every gather descriptor
    /// must land fully inside a declared `Read` or `Update` range. An
    /// undeclared set keeps the legacy permissive contract and never
    /// raises this.
    UndeclaredRead {
        /// First byte of the offending load.
        addr: memspace::Addr,
        /// Length of the load in bytes.
        len: u32,
        /// The mode the covering declaration carried, if any (a load
        /// from a `write` range, versus a load outside every declared
        /// range when `None`).
        declared: Option<memspace::AccessMode>,
    },
}

impl SimError {
    /// The injected fault inside this error, if it is one.
    pub fn as_fault(&self) -> Option<&FaultError> {
        match self {
            SimError::Fault(fault) => Some(fault),
            _ => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoSuchAccel { index, count } => {
                write!(
                    f,
                    "accelerator {index} does not exist (machine has {count})"
                )
            }
            SimError::BadConfig { reason } => write!(f, "invalid machine configuration: {reason}"),
            SimError::ValueTooLarge { size, staging } => write!(
                f,
                "value of {size} bytes exceeds the {staging}-byte outer-access staging buffer"
            ),
            SimError::Memory(err) => write!(f, "memory error: {err}"),
            SimError::Dma(err) => write!(f, "DMA error: {err}"),
            SimError::Cache(err) => write!(f, "software-cache error: {err}"),
            SimError::Fault(err) => write!(f, "injected fault: {err}"),
            SimError::Dispatch(err) => err.fmt(f),
            SimError::UndeclaredWrite {
                addr,
                len,
                declared,
            } => match declared {
                Some(mode) => write!(
                    f,
                    "undeclared write: {len}-byte store at {addr} into a range declared \
                     `{mode}`; declare it with .writes()/.updates() (or the offload-lang \
                     writes()/updates() clause) if the kernel stores to it"
                ),
                None => write!(
                    f,
                    "undeclared write: {len}-byte store at {addr} is outside every declared \
                     range; a mode-annotated offload must declare all buffers it stores to"
                ),
            },
            SimError::UndeclaredRead {
                addr,
                len,
                declared,
            } => match declared {
                Some(mode) => write!(
                    f,
                    "undeclared read: {len}-byte gather at {addr} from a range declared \
                     `{mode}`; declare it with .reads()/.updates() if the kernel gathers \
                     from it"
                ),
                None => write!(
                    f,
                    "undeclared read: {len}-byte gather at {addr} is outside every declared \
                     range; a mode-annotated offload must declare all buffers it gathers from"
                ),
            },
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Memory(err) => Some(err),
            SimError::Dma(err) => Some(err),
            SimError::Cache(err) => Some(err),
            SimError::Fault(err) => Some(err),
            SimError::Dispatch(err) => Some(err),
            _ => None,
        }
    }
}

impl From<MemError> for SimError {
    fn from(err: MemError) -> SimError {
        SimError::Memory(err)
    }
}

impl From<DmaError> for SimError {
    fn from(err: DmaError) -> SimError {
        SimError::Dma(err)
    }
}

impl From<CacheError> for SimError {
    fn from(err: CacheError) -> SimError {
        SimError::Cache(err)
    }
}

impl From<FaultError> for SimError {
    fn from(err: FaultError) -> SimError {
        SimError::Fault(err)
    }
}

impl From<DispatchFault> for SimError {
    fn from(err: DispatchFault) -> SimError {
        SimError::Dispatch(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = SimError::NoSuchAccel { index: 9, count: 6 };
        assert!(err.to_string().contains('9'));
        assert!(err.source().is_none());

        let err = SimError::from(MemError::OutOfMemory {
            space: memspace::SpaceId::MAIN,
            requested: 10,
            available: 5,
        });
        assert!(err.source().is_some());
        assert!(err.to_string().contains("memory error"));

        let err = SimError::from(FaultError::AccelDead { accel: 2 });
        assert!(err.source().is_some());
        assert!(err.to_string().contains("injected fault"));
        assert_eq!(err.as_fault(), Some(&FaultError::AccelDead { accel: 2 }));
    }

    #[test]
    fn dispatch_fault_messages_stay_informative() {
        let miss = DispatchFault::DomainMiss {
            target: 0x1020,
            duplicate: 0b10,
            outer_matched: true,
            outer_searched: 3,
            method_name: Some("Enemy::update".into()),
        };
        let text = SimError::from(miss).to_string();
        assert!(text.contains("fn@0x1020"), "{text}");
        assert!(text.contains("Enemy::update"), "{text}");
        assert!(text.contains("dup0b10"), "{text}");
        assert!(text.contains("annotate the offload"), "{text}");

        let miss = DispatchFault::DomainMiss {
            target: 0x40,
            duplicate: 0,
            outer_matched: false,
            outer_searched: 7,
            method_name: None,
        };
        let text = miss.to_string();
        assert!(text.contains("searched 7 entries"), "{text}");
        assert!(text.contains("domain annotation"), "{text}");
    }

    #[test]
    fn undeclared_write_messages_name_the_fix() {
        let addr = memspace::Addr::new(memspace::SpaceId::MAIN, 0x200);
        let read_violation = SimError::UndeclaredWrite {
            addr,
            len: 64,
            declared: Some(memspace::AccessMode::Read),
        };
        let text = read_violation.to_string();
        assert!(text.contains("declared `read`"), "{text}");
        assert!(text.contains(".writes()"), "{text}");

        let outside = SimError::UndeclaredWrite {
            addr,
            len: 16,
            declared: None,
        };
        let text = outside.to_string();
        assert!(text.contains("outside every declared range"), "{text}");
        assert!(read_violation.source().is_none());
    }

    #[test]
    fn undeclared_read_messages_name_the_fix() {
        let addr = memspace::Addr::new(memspace::SpaceId::MAIN, 0x300);
        let write_violation = SimError::UndeclaredRead {
            addr,
            len: 32,
            declared: Some(memspace::AccessMode::Write),
        };
        let text = write_violation.to_string();
        assert!(text.contains("declared `write`"), "{text}");
        assert!(text.contains(".reads()"), "{text}");

        let outside = SimError::UndeclaredRead {
            addr,
            len: 8,
            declared: None,
        };
        let text = outside.to_string();
        assert!(text.contains("outside every declared range"), "{text}");
        assert!(write_violation.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SimError>();
    }
}
