//! Error type for the simulator.

use std::error::Error;
use std::fmt;

use dma::DmaError;
use memspace::MemError;
use softcache::CacheError;

/// Errors raised by simulated-machine operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// An accelerator index beyond the configured count.
    NoSuchAccel {
        /// The requested accelerator index.
        index: u16,
        /// How many accelerators the machine has.
        count: u16,
    },
    /// A machine configuration that cannot be built.
    BadConfig {
        /// Why the configuration was rejected.
        reason: String,
    },
    /// A value too large for the context's staging buffer.
    ValueTooLarge {
        /// Size of the value in bytes.
        size: u32,
        /// Size of the staging buffer in bytes.
        staging: u32,
    },
    /// An underlying memory failure.
    Memory(MemError),
    /// An underlying DMA failure.
    Dma(DmaError),
    /// An underlying software-cache failure.
    Cache(CacheError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoSuchAccel { index, count } => {
                write!(
                    f,
                    "accelerator {index} does not exist (machine has {count})"
                )
            }
            SimError::BadConfig { reason } => write!(f, "invalid machine configuration: {reason}"),
            SimError::ValueTooLarge { size, staging } => write!(
                f,
                "value of {size} bytes exceeds the {staging}-byte outer-access staging buffer"
            ),
            SimError::Memory(err) => write!(f, "memory error: {err}"),
            SimError::Dma(err) => write!(f, "DMA error: {err}"),
            SimError::Cache(err) => write!(f, "software-cache error: {err}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Memory(err) => Some(err),
            SimError::Dma(err) => Some(err),
            SimError::Cache(err) => Some(err),
            _ => None,
        }
    }
}

impl From<MemError> for SimError {
    fn from(err: MemError) -> SimError {
        SimError::Memory(err)
    }
}

impl From<DmaError> for SimError {
    fn from(err: DmaError) -> SimError {
        SimError::Dma(err)
    }
}

impl From<CacheError> for SimError {
    fn from(err: CacheError) -> SimError {
        SimError::Cache(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = SimError::NoSuchAccel { index: 9, count: 6 };
        assert!(err.to_string().contains('9'));
        assert!(err.source().is_none());

        let err = SimError::from(MemError::OutOfMemory {
            space: memspace::SpaceId::MAIN,
            requested: 10,
            available: 5,
        });
        assert!(err.source().is_some());
        assert!(err.to_string().contains("memory error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SimError>();
    }
}
