//! Declarative gather plans: index lists turned into coalesced DMA
//! descriptor batches.
//!
//! A [`GatherPlan`] is the simulator's first-class primitive for
//! irregular reads. Instead of issuing one synchronous outer access per
//! element (the pointer-chasing anti-pattern the paper's §4.2 warns
//! about), a kernel names the *set* of elements it needs — `base`,
//! `elem_size`, and an index list — and the runtime turns that into the
//! fewest DMA descriptors that cover it: runs of consecutive ascending
//! indices collapse into one transfer, and over-long runs are split at
//! [`dma::MAX_TRANSFER`].
//!
//! Descriptors are order-preserving: the packed local buffer holds the
//! requested elements in index-list order, so a kernel can walk it as a
//! dense array regardless of how scattered the remote picture was.

use dma::MAX_TRANSFER;
use memspace::Addr;

/// One coalesced transfer of a [`GatherPlan`]: `bytes` starting at
/// `base + remote_offset` land at `local_base + local_offset`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GatherDescriptor {
    /// Byte offset of this run from the plan's base address.
    pub remote_offset: u32,
    /// Byte offset of this run in the packed local buffer.
    pub local_offset: u32,
    /// Run length in bytes (at most [`dma::MAX_TRANSFER`]).
    pub bytes: u32,
}

/// A declared irregular read: `indices` into an array of
/// `elem_size`-byte elements starting at `base` in main memory.
///
/// Built by [`GatherPlan::new`] and executed by
/// [`crate::AccelCtx::gather`] (or declared up front via
/// `OffloadBuilder::gather`). The plan itself is pure description —
/// constructing one costs no simulated cycles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GatherPlan {
    base: Addr,
    elem_size: u32,
    indices: Vec<u32>,
}

impl GatherPlan {
    /// Describes a gather of `indices` (element indices, not byte
    /// offsets) from the `elem_size`-byte-element array at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `elem_size` is zero — a zero-stride gather describes
    /// nothing and would divide the coalescer by zero.
    pub fn new(base: Addr, elem_size: u32, indices: Vec<u32>) -> GatherPlan {
        assert!(elem_size > 0, "gather elem_size must be non-zero");
        GatherPlan {
            base,
            elem_size,
            indices,
        }
    }

    /// The array's base address in main memory.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Bytes per element.
    pub fn elem_size(&self) -> u32 {
        self.elem_size
    }

    /// The element indices, in request order.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Number of elements the plan fetches.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the plan fetches nothing.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Total bytes the packed local buffer needs.
    pub fn total_bytes(&self) -> u32 {
        self.elem_size * self.indices.len() as u32
    }

    /// The `(base, len)` main-memory footprint covering every requested
    /// element — the range an implicit `reads` declaration must cover.
    /// `None` for an empty plan.
    pub fn span(&self) -> Option<(Addr, u32)> {
        let lo = *self.indices.iter().min()?;
        let hi = *self.indices.iter().max()?;
        let start = self
            .base
            .offset_by(lo * self.elem_size)
            .expect("gather span start overflows address space");
        Some((start, (hi - lo + 1) * self.elem_size))
    }

    /// The coalesced descriptor batch, in index-list order.
    ///
    /// Runs of consecutive ascending indices (`i, i+1, i+2, …`) merge
    /// into one descriptor; merged runs longer than
    /// [`dma::MAX_TRANSFER`] split into engine-sized pieces. Because the
    /// walk preserves request order, descriptor `local_offset`s tile the
    /// packed buffer densely from zero.
    pub fn descriptors(&self) -> Vec<GatherDescriptor> {
        let mut out = Vec::new();
        let elem = self.elem_size;
        let mut i = 0usize;
        let mut local = 0u32;
        while i < self.indices.len() {
            // Grow the run while the next index is exactly +1.
            let start = self.indices[i];
            let mut run = 1u32;
            while i + run as usize != self.indices.len()
                && self.indices[i + run as usize] == start + run
            {
                run += 1;
            }
            // Split the merged run at the engine's transfer ceiling.
            let mut run_bytes = run * elem;
            let mut remote = start * elem;
            while run_bytes > 0 {
                let piece = run_bytes.min(MAX_TRANSFER);
                out.push(GatherDescriptor {
                    remote_offset: remote,
                    local_offset: local,
                    bytes: piece,
                });
                remote += piece;
                local += piece;
                run_bytes -= piece;
            }
            i += run as usize;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memspace::SpaceId;

    fn base() -> Addr {
        Addr::new(SpaceId::MAIN, 0x1000)
    }

    #[test]
    fn empty_plan_has_no_descriptors() {
        let plan = GatherPlan::new(base(), 4, vec![]);
        assert!(plan.is_empty());
        assert_eq!(plan.total_bytes(), 0);
        assert!(plan.descriptors().is_empty());
        assert_eq!(plan.span(), None);
    }

    #[test]
    fn scattered_indices_get_one_descriptor_each() {
        let plan = GatherPlan::new(base(), 8, vec![7, 3, 11]);
        let descs = plan.descriptors();
        assert_eq!(
            descs,
            vec![
                GatherDescriptor {
                    remote_offset: 56,
                    local_offset: 0,
                    bytes: 8
                },
                GatherDescriptor {
                    remote_offset: 24,
                    local_offset: 8,
                    bytes: 8
                },
                GatherDescriptor {
                    remote_offset: 88,
                    local_offset: 16,
                    bytes: 8
                },
            ]
        );
    }

    #[test]
    fn consecutive_runs_coalesce() {
        let plan = GatherPlan::new(base(), 4, vec![10, 11, 12, 13, 2, 5, 6]);
        let descs = plan.descriptors();
        assert_eq!(
            descs,
            vec![
                GatherDescriptor {
                    remote_offset: 40,
                    local_offset: 0,
                    bytes: 16
                },
                GatherDescriptor {
                    remote_offset: 8,
                    local_offset: 16,
                    bytes: 4
                },
                GatherDescriptor {
                    remote_offset: 20,
                    local_offset: 20,
                    bytes: 8
                },
            ]
        );
    }

    #[test]
    fn descending_indices_do_not_coalesce() {
        let plan = GatherPlan::new(base(), 4, vec![3, 2, 1]);
        assert_eq!(plan.descriptors().len(), 3);
    }

    #[test]
    fn long_runs_split_at_max_transfer() {
        // 8192 consecutive 4-byte elements = 32 KiB = 2x MAX_TRANSFER.
        let indices: Vec<u32> = (0..8192).collect();
        let plan = GatherPlan::new(base(), 4, indices);
        let descs = plan.descriptors();
        assert_eq!(descs.len(), 2);
        assert_eq!(descs[0].bytes, MAX_TRANSFER);
        assert_eq!(descs[1].bytes, MAX_TRANSFER);
        assert_eq!(descs[1].remote_offset, MAX_TRANSFER);
        assert_eq!(descs[1].local_offset, MAX_TRANSFER);
    }

    #[test]
    fn local_offsets_tile_densely() {
        let plan = GatherPlan::new(base(), 12, vec![0, 9, 1, 1, 4, 5, 6]);
        let descs = plan.descriptors();
        let mut expect = 0u32;
        for d in &descs {
            assert_eq!(d.local_offset, expect);
            expect += d.bytes;
        }
        assert_eq!(expect, plan.total_bytes());
    }

    #[test]
    fn span_covers_min_to_max() {
        let plan = GatherPlan::new(base(), 4, vec![9, 2, 5]);
        let (start, len) = plan.span().unwrap();
        assert_eq!(start, base().offset_by(8).unwrap());
        assert_eq!(len, 32);
    }

    #[test]
    #[should_panic(expected = "elem_size must be non-zero")]
    fn zero_elem_size_panics() {
        let _ = GatherPlan::new(base(), 0, vec![1]);
    }
}
