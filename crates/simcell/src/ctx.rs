//! The accelerator execution context.

use dma::{AccessKind, DmaDirection, DmaEngine, Tag, TagMask};
use memspace::{AccessMode, Addr, AddrRange, MemoryRegion, ModeSet, Pod};
use softcache::{CacheBacking, CacheChoice, SoftwareCache, TunedCache};

use crate::cost::CostModel;
use crate::error::SimError;
use crate::event::{CoreId, EventKind, EventLog};
use crate::fault::{DmaFault, FaultError, FaultKind, FaultPlane, RecoveryKind};
use crate::trace::MachineStats;

/// DMA tag reserved for synchronous "outer" accesses (the naive
/// dereference-of-a-host-pointer path). User code should use tags
/// `0..=26`; `27..=31` are reserved by the runtime and caches.
pub const OUTER_ACCESS_TAG: u8 = 27;

/// DMA tag reserved for gather-plan descriptor batches (see
/// [`AccelCtx::gather`]). Reserved alongside [`OUTER_ACCESS_TAG`]: a
/// gather drains its whole batch with one wait on this tag, so user
/// transfers must never share it.
pub const GATHER_TAG: u8 = 28;

/// Stack-buffer size for per-element Pod marshalling: any `T` up to
/// this size round-trips through cached accessors without touching the
/// heap. Covers every Pod in the workspace (the largest, a full game
/// entity, is 48 bytes).
const POD_STACK_BUF: usize = 64;

/// Everything an offloaded thread can do, with every operation charged
/// to the accelerator's cycle counter.
///
/// An `AccelCtx` is handed to the closure passed to
/// [`crate::Machine::offload`]. It exposes exactly the operations an SPE
/// thread has (paper §3):
///
/// - allocate and access *local store* data (fast),
/// - issue tagged, non-blocking DMA to main memory and wait on tags,
/// - perform naive synchronous "outer" accesses — each one a full DMA
///   round trip, which is what makes unoptimised pointer-chasing code so
///   slow on these machines (paper §4.2),
/// - route outer accesses through a [`SoftwareCache`].
///
/// Direct local accesses are reported to the DMA race checker, so a
/// missing `dma_wait` is caught even though the simulation itself is
/// sequential.
#[derive(Debug)]
pub struct AccelCtx<'m> {
    pub(crate) now: u64,
    pub(crate) cost: CostModel,
    pub(crate) accel_index: u16,
    pub(crate) main: &'m mut MemoryRegion,
    pub(crate) ls: &'m mut MemoryRegion,
    pub(crate) dma: &'m mut DmaEngine,
    pub(crate) staging: Addr,
    pub(crate) staging_size: u32,
    pub(crate) events: &'m mut EventLog,
    pub(crate) stats: &'m mut MachineStats,
    pub(crate) accesses: &'m mut softcache::AccessTrace,
    pub(crate) span: u32,
    pub(crate) tuned: Option<TunedCache>,
    pub(crate) faults: &'m mut FaultPlane,
    pub(crate) fault_sticky: Option<FaultError>,
    pub(crate) put_journal: Vec<(Addr, Vec<u8>)>,
    pub(crate) modes: ModeSet,
    pub(crate) gathered: Vec<Addr>,
}

impl<'m> AccelCtx<'m> {
    /// The accelerator's current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// This accelerator's index.
    pub fn accel_index(&self) -> u16 {
        self.accel_index
    }

    /// The local-store space of this accelerator.
    #[inline]
    pub fn local_space(&self) -> memspace::SpaceId {
        self.ls.id()
    }

    /// The machine's cost model.
    #[inline]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Charges `cycles` of pure computation.
    #[inline]
    pub fn compute(&mut self, cycles: u64) {
        self.accesses.record_compute(self.span, cycles);
        self.now += cycles;
    }

    #[inline]
    fn ls_cycles(&self, bytes: u32) -> u64 {
        self.cost.ls_access * u64::from(bytes.div_ceil(16).max(1))
    }

    // ---- fault plane ------------------------------------------------------

    /// The sticky fault left by an operation that cannot report errors
    /// directly (tag-timeout during a `dma_wait`), without clearing it.
    pub fn pending_fault(&self) -> Option<FaultError> {
        self.fault_sticky
    }

    /// Takes (and clears) the sticky fault, if any. The recovery layer
    /// calls this after the tile closure returns; fallible DMA
    /// operations surface it automatically via
    /// [`AccelCtx::check_faults`].
    pub fn take_fault(&mut self) -> Option<FaultError> {
        self.fault_sticky.take()
    }

    /// Errors out with the sticky fault if one is pending. Called at
    /// the head of every fallible DMA entry point so a timed-out wait
    /// surfaces at the next opportunity; call it explicitly before
    /// returning from a closure that only uses infallible operations.
    ///
    /// # Errors
    ///
    /// Returns the pending [`FaultError`], if any.
    #[inline]
    pub fn check_faults(&mut self) -> Result<(), SimError> {
        match self.fault_sticky.take() {
            Some(fault) => Err(fault.into()),
            None => Ok(()),
        }
    }

    /// Notes that the recovery layer is retrying `tile` on this
    /// accelerator (zero simulated cost — the backoff itself is charged
    /// separately by the caller, via [`AccelCtx::compute`]).
    pub fn recovery_note_retry(&mut self, tile: u32, attempt: u32, backoff: u64) {
        self.stats.recovery_retries += 1;
        self.stats.recovery_backoff_cycles += backoff;
        self.events.record(
            self.now,
            EventKind::RecoveryApplied {
                accel: self.accel_index,
                recovery: RecoveryKind::Retry {
                    tile,
                    attempt,
                    backoff,
                },
            },
        );
    }

    /// Notes that pipeline stage `stage` is about to stall for `cycles`
    /// before handling `chunk` — waiting on its input when
    /// `backpressure` is false, blocked by a full inter-stage queue when
    /// true. Bookkeeping only (counters always, a structured
    /// [`EventKind::PipeWait`] when the log is on); the stall itself is
    /// charged separately by the caller, via [`AccelCtx::compute`].
    pub fn pipe_note_wait(&mut self, stage: u16, chunk: u32, cycles: u64, backpressure: bool) {
        if backpressure {
            self.stats.pipe_backpressure_cycles += cycles;
        } else {
            self.stats.pipe_input_wait_cycles += cycles;
        }
        self.events.record(
            self.now,
            EventKind::PipeWait {
                accel: self.accel_index,
                stage,
                chunk,
                until: self.now + cycles,
                backpressure,
            },
        );
    }

    // ---- access modes ----------------------------------------------------

    /// The access-mode declarations this offload was built with (empty
    /// when the offload declared nothing — the legacy permissive
    /// contract).
    pub fn modes(&self) -> &ModeSet {
        &self.modes
    }

    /// The declared mode covering `len` bytes at `addr`, if any. Used
    /// by the runtime's transfer layers to elide write-backs for
    /// `Read`-declared ranges.
    pub fn declared_mode(&self, addr: Addr, len: u32) -> Option<AccessMode> {
        self.modes.mode_for(addr, len)
    }

    /// Classifies one put against the declared access modes.
    ///
    /// `Ok(None)` means the offload declared nothing (legacy contract:
    /// journal conservatively). `Ok(Some(mode))` is a declared writable
    /// range. A store into a `read` range — or outside every declared
    /// range — of a mode-annotated offload is an undeclared write: the
    /// dynamic race analyzer records it and the put is rejected before
    /// any byte moves.
    #[inline]
    fn put_mode(&mut self, remote: Addr, size: u32) -> Result<Option<AccessMode>, SimError> {
        if self.modes.is_empty() {
            return Ok(None);
        }
        match self.modes.mode_for(remote, size) {
            mode @ Some(AccessMode::Write | AccessMode::Update) => Ok(mode),
            declared => {
                self.dma.note_undeclared_write(
                    AddrRange::new(remote, size)?,
                    declared == Some(AccessMode::Read),
                    self.now,
                );
                Err(SimError::UndeclaredWrite {
                    addr: remote,
                    len: size,
                    declared,
                })
            }
        }
    }

    /// Classifies one gather descriptor against the declared access
    /// modes: the read-side mirror of [`AccelCtx::put_mode`].
    ///
    /// `Ok(None)` means the offload declared nothing (legacy
    /// permissive contract). `Ok(Some(mode))` is a declared readable
    /// range. A gather from a `write` range — or outside every
    /// declared range — of a mode-annotated offload is an undeclared
    /// read, rejected before any byte moves.
    #[inline]
    fn read_mode(&mut self, remote: Addr, size: u32) -> Result<Option<AccessMode>, SimError> {
        if self.modes.is_empty() {
            return Ok(None);
        }
        match self.modes.mode_for(remote, size) {
            mode @ Some(AccessMode::Read | AccessMode::Update) => Ok(mode),
            declared => Err(SimError::UndeclaredRead {
                addr: remote,
                len: size,
                declared,
            }),
        }
    }

    /// Notes one write-back DMA the runtime elided because the target
    /// range was declared `read` — bookkeeping only, zero simulated
    /// cost (that is the point: the transfer never happens).
    pub fn note_writeback_elided(&mut self, bytes: u32) {
        self.stats.dma_writebacks_elided += 1;
        self.stats.dma_writeback_bytes_elided += u64::from(bytes);
        self.events
            .note_static(self.now, "writeback elided (read-only)");
    }

    /// Mode-aware gate for the runtime's conservative-flush idioms
    /// (`ArrayAccessor::write_back`, the streaming helpers in
    /// `offload_rt`): returns `true` when the put of `bytes` from
    /// `local` to `remote` may be skipped because the target range is
    /// declared `read` and the local image is byte-identical to main
    /// memory (the elision is counted via
    /// [`AccelCtx::note_writeback_elided`]). The comparison is
    /// host-side bookkeeping — zero simulated cycles either way, which
    /// is exactly the declaration's value: the transfer itself never
    /// happens.
    ///
    /// # Errors
    ///
    /// A *differing* local image under a `read` declaration is a
    /// genuine mutation: the dynamic race analyzer records it and the
    /// call fails with [`SimError::UndeclaredWrite`] instead of
    /// silently dropping the kernel's stores.
    pub fn writeback_elidable(
        &mut self,
        local: Addr,
        remote: Addr,
        bytes: u32,
    ) -> Result<bool, SimError> {
        if self.declared_mode(remote, bytes) != Some(AccessMode::Read) {
            return Ok(false);
        }
        let mut ours = vec![0u8; bytes as usize];
        let mut theirs = vec![0u8; bytes as usize];
        self.ls.read_into(local, &mut ours)?;
        self.main.read_into(remote, &mut theirs)?;
        if ours != theirs {
            self.dma
                .note_undeclared_write(AddrRange::new(remote, bytes)?, true, self.now);
            return Err(SimError::UndeclaredWrite {
                addr: remote,
                len: bytes,
                declared: Some(AccessMode::Read),
            });
        }
        self.note_writeback_elided(bytes);
        Ok(true)
    }

    /// The local store's current allocation mark; pass it to
    /// [`AccelCtx::local_alloc_restore`] to release everything
    /// allocated after it. The recovery layer brackets each tile
    /// attempt with a mark/restore pair so retries do not leak local
    /// store.
    pub fn local_alloc_mark(&self) -> u32 {
        self.ls.save_alloc()
    }

    /// Releases every local-store allocation made since `mark` was
    /// taken (see [`AccelCtx::local_alloc_mark`]).
    pub fn local_alloc_restore(&mut self, mark: u32) {
        self.ls.restore_alloc(mark);
    }

    /// The put journal's current mark. While a fault plan is armed,
    /// every `dma_put` records its destination's main-memory pre-image;
    /// the recovery layer brackets each tile attempt with a mark so a
    /// failed attempt's puts can be voided — see
    /// [`AccelCtx::put_journal_rollback`]. Empty (and free) without a
    /// plan.
    pub fn put_journal_mark(&self) -> usize {
        self.put_journal.len()
    }

    /// Restores, newest-first, the main-memory pre-image of every put
    /// recorded since `mark`, then forgets them. A failed tile attempt
    /// may have committed puts before it faulted (or scribbled its
    /// destination on a corrupted put); voiding them is what lets the
    /// retry — or the host fallback — re-read the exact input the
    /// failed attempt saw, which is what makes recovery bit-exact for
    /// in-place workloads. Call only after the attempt's in-flight
    /// transfers have drained. Zero simulated cost: this models a
    /// transactional tile commit, not a data transfer.
    ///
    /// # Errors
    ///
    /// Fails on bounds or space violations (the journaled ranges were
    /// valid when written, so failures indicate memory reconfiguration).
    pub fn put_journal_rollback(&mut self, mark: usize) -> Result<(), SimError> {
        while self.put_journal.len() > mark {
            let (addr, bytes) = self.put_journal.pop().expect("len > mark");
            self.main.write_bytes(addr, &bytes)?;
        }
        Ok(())
    }

    /// Forgets the pre-images recorded since `mark` without restoring
    /// them: the attempt committed, its puts stand.
    pub fn put_journal_commit(&mut self, mark: usize) {
        self.put_journal.truncate(mark);
    }

    /// Records an injected fault: always counts it, and records the
    /// structured event when the log is on. Zero simulated cost.
    fn note_fault(&mut self, at: u64, fault: FaultKind) {
        self.stats.faults_injected += 1;
        match fault {
            FaultKind::DmaCorrupt { .. } => self.stats.fault_dma_corrupt += 1,
            FaultKind::DmaDrop { .. } => self.stats.fault_dma_drop += 1,
            FaultKind::TagTimeout { stall } => {
                self.stats.fault_timeouts += 1;
                self.stats.fault_stall_cycles += stall;
            }
            FaultKind::AccelStall { cycles } => {
                self.stats.fault_stalls += 1;
                self.stats.fault_stall_cycles += cycles;
            }
            FaultKind::AccelDeath => self.stats.fault_deaths += 1,
            FaultKind::LsPoison => self.stats.fault_ls_poison += 1,
        }
        self.events.record(
            at,
            EventKind::FaultInjected {
                accel: self.accel_index,
                fault,
            },
        );
    }

    /// XORs the first quadword at `addr` (in `region`) with a marker —
    /// the observable damage of a corrupted transfer.
    fn scribble(region: &mut MemoryRegion, addr: Addr, len: u32) -> Result<(), SimError> {
        let n = (len.min(16)) as usize;
        let mut buf = [0u8; 16];
        region.read_into(addr, &mut buf[..n])?;
        for b in &mut buf[..n] {
            *b ^= 0xA5;
        }
        region.write_bytes(addr, &buf[..n])?;
        Ok(())
    }

    /// Rolls the per-transfer corrupt/drop decision (no draw while the
    /// plane is inactive or both rates are zero).
    fn roll_transfer(&mut self) -> Option<DmaFault> {
        if self.faults.active() {
            self.faults.roll_dma()
        } else {
            None
        }
    }

    /// Rolls the local-store poison decision for one charged read; a
    /// hit models a detected parity error (the access was paid for,
    /// the data is unusable).
    fn roll_ls_poison(&mut self) -> Result<(), SimError> {
        if self.faults.active() {
            let rate = self.faults.plan().map(|p| p.ls_poison).unwrap_or(0.0);
            if self.faults.roll(rate) {
                self.note_fault(self.now, FaultKind::LsPoison);
                return Err(FaultError::LsPoisoned {
                    accel: self.accel_index,
                }
                .into());
            }
        }
        Ok(())
    }

    /// Counts one DMA command in [`MachineStats`] and, when the event
    /// log is enabled, records a [`EventKind::DmaIssue`] stamped at
    /// `issued_at` with the completion cycle the engine just computed.
    /// Pure bookkeeping: no simulated cycles.
    fn trace_dma(&mut self, issued_at: u64, bytes: u32, tag: Tag, dir: DmaDirection) {
        match dir {
            DmaDirection::Get => {
                self.stats.dma_gets += 1;
                self.stats.dma_bytes_to_local += u64::from(bytes);
            }
            DmaDirection::Put => {
                self.stats.dma_puts += 1;
                self.stats.dma_bytes_from_local += u64::from(bytes);
            }
        }
        if self.events.is_enabled() {
            self.events.record(
                issued_at,
                EventKind::DmaIssue {
                    accel: self.accel_index,
                    tag: tag.raw(),
                    bytes,
                    dir,
                    complete_at: self.dma.last_complete_at(),
                },
            );
        }
    }

    /// Records a [`EventKind::DmaWait`] covering `[issued_at, self.now]`
    /// when the event log is enabled.
    fn trace_wait(&mut self, issued_at: u64, mask: TagMask) {
        if self.events.is_enabled() {
            self.events.record(
                issued_at,
                EventKind::DmaWait {
                    accel: self.accel_index,
                    mask: mask.bits(),
                    resumed_at: self.now,
                },
            );
        }
    }

    /// Diffs a cache's counters across one routed access and emits
    /// cache events / [`MachineStats`] updates for the delta.
    fn trace_cache_delta(
        &mut self,
        at: u64,
        before: softcache::CacheStats,
        after: softcache::CacheStats,
    ) {
        let hits = after.hits - before.hits;
        let misses = after.misses - before.misses;
        let evictions = after.evictions - before.evictions;
        let bytes_fetched = after.bytes_fetched - before.bytes_fetched;
        let bytes_written_back = after.bytes_written_back - before.bytes_written_back;
        self.stats.cache_hits += hits;
        self.stats.cache_misses += misses;
        self.stats.cache_evictions += evictions;
        self.stats.cache_bytes_fetched += bytes_fetched;
        self.stats.cache_bytes_written_back += bytes_written_back;
        if self.events.is_enabled() {
            let accel = self.accel_index;
            if hits > 0 {
                self.events.record(
                    at,
                    EventKind::CacheHit {
                        accel,
                        count: hits as u32,
                    },
                );
            }
            if misses > 0 {
                self.events.record(
                    at,
                    EventKind::CacheMiss {
                        accel,
                        count: misses as u32,
                        bytes_fetched,
                    },
                );
            }
            if evictions > 0 {
                self.events.record(
                    at,
                    EventKind::CacheEvict {
                        accel,
                        count: evictions as u32,
                    },
                );
            }
        }
    }

    // ---- annotation ------------------------------------------------------

    /// Opens a named span on this accelerator's timeline (free: recording
    /// never advances the clock). Pair with [`AccelCtx::span_end`] using
    /// the same name.
    pub fn span_start(&mut self, name: &'static str) {
        self.events.record(
            self.now,
            EventKind::SpanStart {
                core: CoreId::Accel(self.accel_index),
                name,
            },
        );
    }

    /// Closes the innermost span opened with [`AccelCtx::span_start`].
    pub fn span_end(&mut self, name: &'static str) {
        self.events.record(
            self.now,
            EventKind::SpanEnd {
                core: CoreId::Accel(self.accel_index),
                name,
            },
        );
    }

    /// Records a static annotation stamped at this accelerator's current
    /// cycle, without allocating (see [`EventLog::note_static`]).
    pub fn note_static(&mut self, text: &'static str) {
        self.events.note_static(self.now, text);
    }

    // ---- local store ----------------------------------------------------

    /// Allocates `size` bytes in the local store. Allocations made inside
    /// an offload block are released when the block ends, matching the
    /// paper's rule that "data declared inside the offload block should
    /// be allocated in scratch-pad memory".
    ///
    /// # Errors
    ///
    /// Fails when the 256 KiB local store is exhausted — the everyday
    /// constraint of SPE programming.
    pub fn alloc_local(&mut self, size: u32, align: u32) -> Result<Addr, SimError> {
        Ok(self.ls.alloc(size, align)?)
    }

    /// Allocates room for one `T` in the local store.
    ///
    /// # Errors
    ///
    /// As for [`AccelCtx::alloc_local`].
    pub fn alloc_local_pod<T: Pod>(&mut self) -> Result<Addr, SimError> {
        Ok(self.ls.alloc_pod::<T>()?)
    }

    /// Allocates room for `count` consecutive `T`s in the local store.
    ///
    /// # Errors
    ///
    /// As for [`AccelCtx::alloc_local`].
    pub fn alloc_local_slice<T: Pod>(&mut self, count: u32) -> Result<Addr, SimError> {
        Ok(self.ls.alloc_pod_slice::<T>(count)?)
    }

    /// Reads a `T` from the local store (fast path).
    ///
    /// # Errors
    ///
    /// Fails on bounds or space violations.
    pub fn local_read_pod<T: Pod>(&mut self, addr: Addr) -> Result<T, SimError> {
        self.now += self.ls_cycles(T::SIZE as u32);
        self.dma.note_local_access(
            AddrRange::new(addr, T::SIZE as u32)?,
            AccessKind::Read,
            self.now,
        );
        self.roll_ls_poison()?;
        Ok(self.ls.read_pod(addr)?)
    }

    /// Writes a `T` to the local store (fast path).
    ///
    /// # Errors
    ///
    /// Fails on bounds or space violations.
    pub fn local_write_pod<T: Pod>(&mut self, addr: Addr, value: &T) -> Result<(), SimError> {
        self.now += self.ls_cycles(T::SIZE as u32);
        self.dma.note_local_access(
            AddrRange::new(addr, T::SIZE as u32)?,
            AccessKind::Write,
            self.now,
        );
        Ok(self.ls.write_pod(addr, value)?)
    }

    /// Reads `count` consecutive `T`s from the local store.
    ///
    /// # Errors
    ///
    /// Fails on bounds or space violations.
    pub fn local_read_slice<T: Pod>(&mut self, addr: Addr, count: u32) -> Result<Vec<T>, SimError> {
        let mut out = Vec::with_capacity(count as usize);
        self.local_read_slice_into(addr, count, &mut out)?;
        Ok(out)
    }

    /// Reads `count` consecutive `T`s from the local store, appending
    /// them to `out`. Charges exactly the same cycles as
    /// [`AccelCtx::local_read_slice`]; the only difference is that
    /// callers iterating over chunks can clear and refill one scratch
    /// `Vec` instead of allocating a fresh one per chunk.
    ///
    /// # Errors
    ///
    /// Fails on bounds or space violations.
    pub fn local_read_slice_into<T: Pod>(
        &mut self,
        addr: Addr,
        count: u32,
        out: &mut Vec<T>,
    ) -> Result<(), SimError> {
        let bytes = (T::SIZE as u32) * count;
        self.now += self.ls_cycles(bytes);
        self.dma
            .note_local_access(AddrRange::new(addr, bytes)?, AccessKind::Read, self.now);
        self.roll_ls_poison()?;
        self.ls.read_pod_slice_into(addr, count, out)?;
        Ok(())
    }

    /// Writes consecutive `T`s to the local store.
    ///
    /// # Errors
    ///
    /// Fails on bounds or space violations.
    pub fn local_write_slice<T: Pod>(&mut self, addr: Addr, values: &[T]) -> Result<(), SimError> {
        let bytes = (T::SIZE * values.len()) as u32;
        self.now += self.ls_cycles(bytes);
        self.dma
            .note_local_access(AddrRange::new(addr, bytes)?, AccessKind::Write, self.now);
        Ok(self.ls.write_pod_slice(addr, values)?)
    }

    /// Reads raw bytes from the local store (fast path).
    ///
    /// # Errors
    ///
    /// Fails on bounds or space violations.
    pub fn local_read_bytes(&mut self, addr: Addr, out: &mut [u8]) -> Result<(), SimError> {
        self.now += self.ls_cycles(out.len() as u32);
        self.dma.note_local_access(
            AddrRange::new(addr, out.len() as u32)?,
            AccessKind::Read,
            self.now,
        );
        self.roll_ls_poison()?;
        Ok(self.ls.read_into(addr, out)?)
    }

    /// Writes raw bytes to the local store (fast path).
    ///
    /// # Errors
    ///
    /// Fails on bounds or space violations.
    pub fn local_write_bytes(&mut self, addr: Addr, data: &[u8]) -> Result<(), SimError> {
        self.now += self.ls_cycles(data.len() as u32);
        self.dma.note_local_access(
            AddrRange::new(addr, data.len() as u32)?,
            AccessKind::Write,
            self.now,
        );
        Ok(self.ls.write_bytes(addr, data)?)
    }

    /// Reads local-store bytes *without charging time* — for runtime
    /// bookkeeping of register-modelled data (e.g. a language VM's frame
    /// slots). Not a modelled memory access; no race note.
    ///
    /// # Errors
    ///
    /// Fails on bounds or space violations.
    #[inline]
    pub fn peek_local(&self, addr: Addr, out: &mut [u8]) -> Result<(), SimError> {
        Ok(self.ls.read_into(addr, out)?)
    }

    /// Writes local-store bytes without charging time (see
    /// [`AccelCtx::peek_local`]).
    ///
    /// # Errors
    ///
    /// Fails on bounds or space violations.
    #[inline]
    pub fn poke_local(&mut self, addr: Addr, data: &[u8]) -> Result<(), SimError> {
        Ok(self.ls.write_bytes(addr, data)?)
    }

    // ---- explicit DMA ---------------------------------------------------

    /// The full `dma_get` path, including the fault plane's per-transfer
    /// corrupt/drop roll. The engine's charging and bookkeeping run
    /// unconditionally — a faulted transfer still costs its cycles.
    fn engine_get(
        &mut self,
        local: Addr,
        remote: Addr,
        size: u32,
        tag: Tag,
    ) -> Result<(), SimError> {
        let issued_at = self.now;
        let decision = self.roll_transfer();
        // The engine copies eagerly; a dropped transfer must leave the
        // destination untouched, so snapshot it first (fault path only).
        let saved = if decision == Some(DmaFault::Drop) {
            let mut bytes = vec![0u8; size as usize];
            self.ls.read_into(local, &mut bytes)?;
            Some(bytes)
        } else {
            None
        };
        self.now = self
            .dma
            .get(self.now, local, remote, size, tag, self.main, self.ls)?;
        self.trace_dma(issued_at, size, tag, DmaDirection::Get);
        match decision {
            None => Ok(()),
            Some(DmaFault::Drop) => {
                if let Some(bytes) = saved {
                    self.ls.write_bytes(local, &bytes)?;
                }
                self.note_fault(
                    self.now,
                    FaultKind::DmaDrop {
                        tag: tag.raw(),
                        bytes: size,
                    },
                );
                Err(FaultError::DmaDropped {
                    accel: self.accel_index,
                    tag: tag.raw(),
                    bytes: size,
                }
                .into())
            }
            Some(DmaFault::Corrupt) => {
                Self::scribble(self.ls, local, size)?;
                self.note_fault(
                    self.now,
                    FaultKind::DmaCorrupt {
                        tag: tag.raw(),
                        bytes: size,
                    },
                );
                Err(FaultError::DmaCorrupted {
                    accel: self.accel_index,
                    tag: tag.raw(),
                    bytes: size,
                }
                .into())
            }
        }
    }

    /// The full `dma_put` path; see [`AccelCtx::engine_get`].
    fn engine_put(
        &mut self,
        local: Addr,
        remote: Addr,
        size: u32,
        tag: Tag,
    ) -> Result<(), SimError> {
        let mode = self.put_mode(remote, size)?;
        let issued_at = self.now;
        let decision = self.roll_transfer();
        // With a plan that can actually fire, journal the destination's
        // pre-image so the recovery layer can void a failed attempt's
        // puts (see AccelCtx::put_journal_rollback). A quiet plan can
        // never need a rollback, so it pays nothing here; a declared
        // `Write` range is fully rewritten by any retry, so its
        // snapshot is skipped too.
        if self.faults.noisy() {
            if mode == Some(AccessMode::Write) {
                self.stats.journal_snapshots_skipped += 1;
                self.stats.journal_bytes_skipped += u64::from(size);
            } else {
                let mut bytes = vec![0u8; size as usize];
                self.main.read_into(remote, &mut bytes)?;
                self.put_journal.push((remote, bytes));
                self.stats.journal_snapshots += 1;
                self.stats.journal_bytes += u64::from(size);
            }
        }
        let saved = if decision == Some(DmaFault::Drop) {
            let mut bytes = vec![0u8; size as usize];
            self.main.read_into(remote, &mut bytes)?;
            Some(bytes)
        } else {
            None
        };
        self.now = self
            .dma
            .put(self.now, local, remote, size, tag, self.main, self.ls)?;
        self.trace_dma(issued_at, size, tag, DmaDirection::Put);
        match decision {
            None => Ok(()),
            Some(DmaFault::Drop) => {
                if let Some(bytes) = saved {
                    self.main.write_bytes(remote, &bytes)?;
                }
                self.note_fault(
                    self.now,
                    FaultKind::DmaDrop {
                        tag: tag.raw(),
                        bytes: size,
                    },
                );
                Err(FaultError::DmaDropped {
                    accel: self.accel_index,
                    tag: tag.raw(),
                    bytes: size,
                }
                .into())
            }
            Some(DmaFault::Corrupt) => {
                Self::scribble(self.main, remote, size)?;
                self.note_fault(
                    self.now,
                    FaultKind::DmaCorrupt {
                        tag: tag.raw(),
                        bytes: size,
                    },
                );
                Err(FaultError::DmaCorrupted {
                    accel: self.accel_index,
                    tag: tag.raw(),
                    bytes: size,
                }
                .into())
            }
        }
    }

    /// Rolls the tag-timeout decision after a wait that actually had
    /// commands pending (a free wait cannot time out), stalling the
    /// clock and leaving the sticky fault on a hit.
    fn after_wait_roll(&mut self, pending: usize, mask: TagMask) {
        if pending == 0 {
            return;
        }
        let plan = match self.faults.plan() {
            Some(plan) => *plan,
            None => return,
        };
        if self.faults.roll(plan.tag_timeout) {
            self.note_fault(
                self.now,
                FaultKind::TagTimeout {
                    stall: plan.timeout_stall,
                },
            );
            self.now += plan.timeout_stall;
            self.fault_sticky = Some(FaultError::TagTimeout {
                accel: self.accel_index,
                mask: mask.bits(),
            });
        }
    }

    /// Issues a non-blocking `dma_get` of `size` bytes from main memory
    /// into the local store, under `tag`.
    ///
    /// # Errors
    ///
    /// As for [`dma::DmaEngine::get`]; additionally surfaces pending
    /// sticky faults and injected transfer faults when a fault plan is
    /// armed.
    pub fn dma_get(
        &mut self,
        local: Addr,
        remote: Addr,
        size: u32,
        tag: Tag,
    ) -> Result<(), SimError> {
        self.check_faults()?;
        self.engine_get(local, remote, size, tag)
    }

    /// Issues a non-blocking `dma_put` of `size` bytes from the local
    /// store out to main memory, under `tag`.
    ///
    /// # Errors
    ///
    /// As for [`dma::DmaEngine::put`]; additionally surfaces pending
    /// sticky faults and injected transfer faults when a fault plan is
    /// armed.
    pub fn dma_put(
        &mut self,
        local: Addr,
        remote: Addr,
        size: u32,
        tag: Tag,
    ) -> Result<(), SimError> {
        self.check_faults()?;
        self.engine_put(local, remote, size, tag)
    }

    /// Blocks until every command in `mask` has completed.
    ///
    /// With a fault plan armed, a wait that had commands pending may
    /// time out: the clock stalls and a sticky
    /// [`FaultError::TagTimeout`] is left on the context, surfaced by
    /// the next fallible DMA operation or [`AccelCtx::check_faults`].
    pub fn dma_wait(&mut self, mask: TagMask) {
        let issued_at = self.now;
        let pending = if self.faults.active() {
            self.dma.pending_on(mask)
        } else {
            0
        };
        self.now = self.dma.wait(mask, self.now);
        self.trace_wait(issued_at, mask);
        self.after_wait_roll(pending, mask);
    }

    /// Blocks until every command under `tag` has completed.
    pub fn dma_wait_tag(&mut self, tag: Tag) {
        self.dma_wait(tag.mask());
    }

    /// Blocks until the DMA engine is idle.
    pub fn dma_wait_all(&mut self) {
        let issued_at = self.now;
        let pending = if self.faults.active() {
            self.dma.pending_on(TagMask::ALL)
        } else {
            0
        };
        self.now = self.dma.wait_all(self.now);
        self.trace_wait(issued_at, TagMask::ALL);
        self.after_wait_roll(pending, TagMask::ALL);
    }

    // ---- gather ----------------------------------------------------------

    /// Executes a [`GatherPlan`](crate::GatherPlan): allocates a packed
    /// local buffer, issues the plan's coalesced descriptor batch as
    /// non-blocking `dma_get`s on [`GATHER_TAG`], and drains the whole
    /// batch with one wait. Returns the local address of the packed
    /// buffer, which holds the requested elements in index-list order.
    ///
    /// This is the declared primitive for irregular reads: one call
    /// replaces N synchronous outer accesses, the engine sees the
    /// fewest transfers that cover the index list, and the batch shows
    /// up as a single slice on the gather trace lane.
    ///
    /// The buffer is block-scoped like any [`AccelCtx::alloc_local`]
    /// allocation; bracket with [`AccelCtx::local_alloc_mark`] /
    /// [`AccelCtx::local_alloc_restore`] to recycle it inside a loop.
    ///
    /// # Fault atomicity
    ///
    /// A transfer fault anywhere in the batch rolls back the *whole*
    /// gather: in-flight descriptors drain, the packed buffer is
    /// released, and the error returns with the local store exactly as
    /// it was before the call — so a retry re-runs the entire plan at
    /// the identical address and recovery is bit-exact.
    ///
    /// # Errors
    ///
    /// Surfaces pending sticky faults and injected transfer faults;
    /// fails with [`SimError::UndeclaredRead`] when the offload
    /// declared access modes and a descriptor is not covered by a
    /// `read`/`update` declaration (checked before any byte moves);
    /// fails on local-store exhaustion or bounds violations.
    pub fn gather(&mut self, plan: &crate::GatherPlan) -> Result<Addr, SimError> {
        self.check_faults()?;
        let tag = Tag::new(GATHER_TAG).expect("constant tag is valid");
        let descs = plan.descriptors();
        // Reject undeclared reads before any byte moves or cycles are
        // charged: the whole batch is licensed or none of it is.
        for d in &descs {
            let remote = plan.base().offset_by(d.remote_offset)?;
            self.read_mode(remote, d.bytes)?;
        }
        let mark = self.ls.save_alloc();
        let local = self.alloc_local(plan.total_bytes(), memspace::DMA_ALIGN)?;
        let issued_at = self.now;
        let mut failed = None;
        for d in &descs {
            let remote = plan
                .base()
                .offset_by(d.remote_offset)
                .expect("descriptor range mode-checked above");
            self.accesses
                .record_read(self.span, remote.offset(), d.bytes);
            let dst = match local.offset_by(d.local_offset) {
                Ok(dst) => dst,
                Err(err) => {
                    failed = Some(err.into());
                    break;
                }
            };
            if let Err(err) = self.engine_get(dst, remote, d.bytes, tag) {
                failed = Some(err);
                break;
            }
        }
        if failed.is_none() {
            self.dma_wait(tag.mask());
            // A timeout rolled on the batch's own wait poisons the
            // batch: surface it here and roll back like any other
            // mid-gather fault.
            failed = self.check_faults().err();
        }
        if let Some(err) = failed {
            // Whole-batch rollback: drain whatever is still in flight
            // (so releasing the buffer is safe), then release it. A
            // retry reallocates at the identical mark, making recovery
            // bit-exact.
            self.dma_wait(tag.mask());
            self.ls.restore_alloc(mark);
            return Err(err);
        }
        self.stats.gathers += 1;
        self.stats.gather_elems += plan.len() as u64;
        self.stats.gather_descriptors += descs.len() as u64;
        self.stats.gather_bytes += u64::from(plan.total_bytes());
        if self.events.is_enabled() {
            self.events.record(
                issued_at,
                EventKind::Gather {
                    accel: self.accel_index,
                    elems: plan.len() as u32,
                    descriptors: descs.len() as u32,
                    bytes: plan.total_bytes(),
                    complete_at: self.now,
                },
            );
        }
        Ok(local)
    }

    /// The packed local buffer of the `index`-th gather declared on the
    /// offload builder (see `OffloadBuilder::gather`), in declaration
    /// order. Builder-declared plans execute before the kernel closure
    /// runs, so the buffers are ready on entry.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range — fewer gathers were
    /// declared than the kernel assumes, which is a plain programming
    /// error.
    pub fn gathered(&self, index: usize) -> Addr {
        self.gathered[index]
    }

    // ---- naive outer access ----------------------------------------------

    fn outer_tag(&self) -> Tag {
        Tag::new(OUTER_ACCESS_TAG).expect("constant tag is valid")
    }

    /// Whether the fused synchronous staging round trip may run: no
    /// fault plan (no transfer rolls, journals, or timeout rolls), no
    /// event log (the split path would record `DmaIssue`/`DmaWait`
    /// events), and the tag's queue idle (the fused issue+retire
    /// assumes the wait retires exactly the command it issued). Outside
    /// those conditions the split `engine_get`/`engine_put` +
    /// `dma_wait` path runs instead; both are bit-identical in every
    /// simulated observable.
    #[inline]
    fn outer_sync_ok(&self, tag: Tag) -> bool {
        !self.faults.active() && !self.events.is_enabled() && !self.dma.tag_busy(tag)
    }

    /// One synchronous staging `get` (`engine_get` + `dma_wait` on the
    /// tag's mask), taking the fused engine path when eligible.
    #[inline]
    fn staged_get(&mut self, remote: Addr, size: u32, tag: Tag) -> Result<(), SimError> {
        if self.outer_sync_ok(tag) {
            self.now = self.dma.sync_get(
                self.now,
                self.staging,
                remote,
                size,
                tag,
                self.main,
                self.ls,
            )?;
            // trace_dma with the event log off: stats only.
            self.stats.dma_gets += 1;
            self.stats.dma_bytes_to_local += u64::from(size);
        } else {
            self.engine_get(self.staging, remote, size, tag)?;
            self.dma_wait(tag.mask());
        }
        Ok(())
    }

    /// One synchronous staging `put`; see [`AccelCtx::staged_get`].
    #[inline]
    fn staged_put(&mut self, remote: Addr, size: u32, tag: Tag) -> Result<(), SimError> {
        if self.outer_sync_ok(tag) {
            // The fused path bypasses `engine_put`, so it enforces the
            // access-mode contract itself.
            self.put_mode(remote, size)?;
            self.now = self.dma.sync_put(
                self.now,
                self.staging,
                remote,
                size,
                tag,
                self.main,
                self.ls,
            )?;
            self.stats.dma_puts += 1;
            self.stats.dma_bytes_from_local += u64::from(size);
        } else {
            self.engine_put(self.staging, remote, size, tag)?;
            self.dma_wait(tag.mask());
        }
        Ok(())
    }

    /// Reads a `T` from main memory *synchronously*: one full DMA round
    /// trip through a staging buffer. This is the cost of dereferencing
    /// an `__outer` pointer without any caching or batching.
    ///
    /// # Errors
    ///
    /// Fails if `T` exceeds the staging buffer or the transfer fails.
    #[inline]
    pub fn outer_read_pod<T: Pod>(&mut self, addr: Addr) -> Result<T, SimError> {
        let size = T::SIZE as u32;
        if size > self.staging_size {
            return Err(SimError::ValueTooLarge {
                size,
                staging: self.staging_size,
            });
        }
        self.accesses.record_read(self.span, addr.offset(), size);
        let tag = self.outer_tag();
        self.check_faults()?;
        self.staged_get(addr, size, tag)?;
        self.check_faults()?;
        self.now += self.ls_cycles(size);
        Ok(self.ls.read_pod(self.staging)?)
    }

    /// Writes a `T` to main memory synchronously (staging + DMA put +
    /// wait).
    ///
    /// # Errors
    ///
    /// As for [`AccelCtx::outer_read_pod`].
    #[inline]
    pub fn outer_write_pod<T: Pod>(&mut self, addr: Addr, value: &T) -> Result<(), SimError> {
        let size = T::SIZE as u32;
        if size > self.staging_size {
            return Err(SimError::ValueTooLarge {
                size,
                staging: self.staging_size,
            });
        }
        self.accesses.record_write(self.span, addr.offset(), size);
        self.check_faults()?;
        self.now += self.ls_cycles(size);
        self.ls.write_pod(self.staging, value)?;
        let tag = self.outer_tag();
        self.staged_put(addr, size, tag)?;
        self.check_faults()?;
        Ok(())
    }

    /// Reads raw bytes from main memory synchronously, chunked through
    /// the staging buffer (one DMA round trip per chunk).
    ///
    /// # Errors
    ///
    /// Fails on transfer errors.
    #[inline]
    pub fn outer_read_bytes(&mut self, addr: Addr, out: &mut [u8]) -> Result<(), SimError> {
        self.accesses
            .record_read(self.span, addr.offset(), out.len() as u32);
        let tag = self.outer_tag();
        self.check_faults()?;
        // Single-chunk accesses (every scalar VM load) skip the chunk
        // loop; the sequence below is the loop body with `done == 0`.
        if !out.is_empty() && out.len() <= self.staging_size as usize {
            let size = out.len() as u32;
            self.staged_get(addr, size, tag)?;
            self.check_faults()?;
            self.now += self.ls_cycles(size);
            self.ls.read_into(self.staging, out)?;
            return Ok(());
        }
        let mut done = 0usize;
        while done < out.len() {
            let chunk = (out.len() - done).min(self.staging_size as usize);
            let remote = addr.offset_by(done as u32)?;
            self.staged_get(remote, chunk as u32, tag)?;
            self.check_faults()?;
            self.now += self.ls_cycles(chunk as u32);
            self.ls
                .read_into(self.staging, &mut out[done..done + chunk])?;
            done += chunk;
        }
        Ok(())
    }

    /// Writes raw bytes to main memory synchronously through the staging
    /// buffer.
    ///
    /// # Errors
    ///
    /// Fails on transfer errors.
    #[inline]
    pub fn outer_write_bytes(&mut self, addr: Addr, data: &[u8]) -> Result<(), SimError> {
        self.accesses
            .record_write(self.span, addr.offset(), data.len() as u32);
        let tag = self.outer_tag();
        self.check_faults()?;
        // Single-chunk fast path; see `outer_read_bytes`.
        if !data.is_empty() && data.len() <= self.staging_size as usize {
            let size = data.len() as u32;
            self.now += self.ls_cycles(size);
            self.ls.write_bytes(self.staging, data)?;
            self.staged_put(addr, size, tag)?;
            self.check_faults()?;
            return Ok(());
        }
        let mut done = 0usize;
        while done < data.len() {
            let chunk = (data.len() - done).min(self.staging_size as usize);
            let remote = addr.offset_by(done as u32)?;
            self.now += self.ls_cycles(chunk as u32);
            self.ls
                .write_bytes(self.staging, &data[done..done + chunk])?;
            self.staged_put(remote, chunk as u32, tag)?;
            self.check_faults()?;
            done += chunk;
        }
        Ok(())
    }

    /// Reads raw bytes from main memory through a software cache.
    ///
    /// # Errors
    ///
    /// As for [`softcache::SoftwareCache::read`].
    pub fn cached_read_bytes<C: SoftwareCache>(
        &mut self,
        cache: &mut C,
        addr: Addr,
        out: &mut [u8],
    ) -> Result<(), SimError> {
        self.accesses
            .record_read(self.span, addr.offset(), out.len() as u32);
        let before = cache.stats();
        let at = self.now;
        let mut backing = CacheBacking {
            main: self.main,
            ls: self.ls,
            dma: self.dma,
        };
        self.now = cache.read(self.now, addr, out, &mut backing)?;
        self.trace_cache_delta(at, before, cache.stats());
        Ok(())
    }

    /// Writes raw bytes to main memory through a software cache.
    ///
    /// # Errors
    ///
    /// As for [`softcache::SoftwareCache::write`], plus
    /// [`SimError::UndeclaredWrite`] when the offload declared access
    /// modes and `addr..addr+len` is not covered by a `write`/`update`
    /// declaration — the line never even turns dirty.
    pub fn cached_write_bytes<C: SoftwareCache>(
        &mut self,
        cache: &mut C,
        addr: Addr,
        data: &[u8],
    ) -> Result<(), SimError> {
        self.put_mode(addr, data.len() as u32)?;
        self.accesses
            .record_write(self.span, addr.offset(), data.len() as u32);
        let before = cache.stats();
        let at = self.now;
        let mut backing = CacheBacking {
            main: self.main,
            ls: self.ls,
            dma: self.dma,
        };
        self.now = cache.write(self.now, addr, data, &mut backing)?;
        self.trace_cache_delta(at, before, cache.stats());
        Ok(())
    }

    // ---- cached outer access ----------------------------------------------

    /// Reads a `T` from main memory through a software cache.
    ///
    /// # Errors
    ///
    /// As for [`softcache::SoftwareCache::read`].
    pub fn cached_read_pod<T: Pod, C: SoftwareCache>(
        &mut self,
        cache: &mut C,
        addr: Addr,
    ) -> Result<T, SimError> {
        self.accesses
            .record_read(self.span, addr.offset(), T::SIZE as u32);
        // Stack buffer for the common small-Pod case; per-element cached
        // reads are the hottest path in cached offload loops.
        let mut small = [0u8; POD_STACK_BUF];
        let mut large;
        let buf = if T::SIZE <= POD_STACK_BUF {
            &mut small[..T::SIZE]
        } else {
            large = vec![0u8; T::SIZE];
            &mut large[..]
        };
        let before = cache.stats();
        let at = self.now;
        let mut backing = CacheBacking {
            main: self.main,
            ls: self.ls,
            dma: self.dma,
        };
        self.now = cache.read(self.now, addr, buf, &mut backing)?;
        let value = T::read_from(buf);
        self.trace_cache_delta(at, before, cache.stats());
        Ok(value)
    }

    /// Writes a `T` to main memory through a software cache.
    ///
    /// # Errors
    ///
    /// As for [`softcache::SoftwareCache::write`], plus
    /// [`SimError::UndeclaredWrite`] under access-mode declarations
    /// (see [`AccelCtx::cached_write_bytes`]).
    pub fn cached_write_pod<T: Pod, C: SoftwareCache>(
        &mut self,
        cache: &mut C,
        addr: Addr,
        value: &T,
    ) -> Result<(), SimError> {
        self.put_mode(addr, T::SIZE as u32)?;
        self.accesses
            .record_write(self.span, addr.offset(), T::SIZE as u32);
        let mut small = [0u8; POD_STACK_BUF];
        let mut large;
        let buf = if T::SIZE <= POD_STACK_BUF {
            &mut small[..T::SIZE]
        } else {
            large = vec![0u8; T::SIZE];
            &mut large[..]
        };
        value.write_to(buf);
        let before = cache.stats();
        let at = self.now;
        let mut backing = CacheBacking {
            main: self.main,
            ls: self.ls,
            dma: self.dma,
        };
        self.now = cache.write(self.now, addr, buf, &mut backing)?;
        self.trace_cache_delta(at, before, cache.stats());
        Ok(())
    }

    /// Builds a set-associative software cache whose line arena lives in
    /// this accelerator's local store.
    ///
    /// The arena is released when the offload block ends; for a cache
    /// that persists across offloads, use
    /// [`crate::Machine::new_cache_for`].
    ///
    /// # Errors
    ///
    /// Fails if the local store cannot fit the cache.
    pub fn new_cache(
        &mut self,
        config: softcache::CacheConfig,
    ) -> Result<softcache::SetAssociativeCache, SimError> {
        Ok(softcache::SetAssociativeCache::new(
            config,
            memspace::SpaceId::MAIN,
            self.ls,
        )?)
    }

    /// Builds a streaming software cache in this accelerator's local
    /// store (released when the offload block ends).
    ///
    /// # Errors
    ///
    /// Fails if the local store cannot fit the two line buffers.
    pub fn new_stream_cache(
        &mut self,
        config: softcache::CacheConfig,
    ) -> Result<softcache::StreamCache, SimError> {
        Ok(softcache::StreamCache::new(
            config,
            memspace::SpaceId::MAIN,
            self.ls,
        )?)
    }

    /// Builds the cache an autotuned [`CacheChoice`] describes in this
    /// accelerator's local store (released when the offload block
    /// ends). Returns `None` for [`CacheChoice::Naive`] — the tuner
    /// decided plain outer accesses win, so there is nothing to build.
    ///
    /// # Errors
    ///
    /// Fails if the local store cannot fit the chosen configuration.
    pub fn new_tuned_cache(
        &mut self,
        choice: &CacheChoice,
    ) -> Result<Option<TunedCache>, SimError> {
        Ok(choice.build(memspace::SpaceId::MAIN, self.ls)?)
    }

    /// Builds the block-scoped tuned cache an offload builder's
    /// [`CacheChoice`] describes (see `OffloadBuilder::cache`).
    /// Allocation only — zero simulated cycles.
    ///
    /// An offload whose access-mode declarations are all `read` gets
    /// the write-through variant of the choice
    /// ([`CacheChoice::for_read_only`]): no dirty line can form, so
    /// the end-of-block flush is guaranteed empty by construction.
    pub(crate) fn install_tuned(&mut self, choice: &CacheChoice) -> Result<(), SimError> {
        let choice = if self.modes.all_read_only() {
            choice.for_read_only()
        } else {
            *choice
        };
        self.tuned = choice.build(memspace::SpaceId::MAIN, self.ls)?;
        Ok(())
    }

    /// Flushes and drops the block-scoped tuned cache (if any), charging
    /// the write-back to this accelerator's clock.
    pub(crate) fn flush_tuned(&mut self) -> Result<(), SimError> {
        if let Some(mut cache) = self.tuned.take() {
            self.cache_flush(&mut cache)?;
        }
        Ok(())
    }

    /// Whether this offload block carries a tuned cache (i.e. the
    /// builder was given a non-naive [`CacheChoice`]).
    pub fn has_tuned_cache(&self) -> bool {
        self.tuned.is_some()
    }

    /// Reads a `T` from main memory through the block's tuned cache,
    /// falling back to a plain synchronous outer access when the offload
    /// was built without one (or with [`CacheChoice::Naive`]).
    ///
    /// # Errors
    ///
    /// As for [`AccelCtx::cached_read_pod`] / [`AccelCtx::outer_read_pod`].
    pub fn tuned_read_pod<T: Pod>(&mut self, addr: Addr) -> Result<T, SimError> {
        match self.tuned.take() {
            Some(mut cache) => {
                let result = self.cached_read_pod(&mut cache, addr);
                self.tuned = Some(cache);
                result
            }
            None => self.outer_read_pod(addr),
        }
    }

    /// Writes a `T` to main memory through the block's tuned cache,
    /// falling back to a plain synchronous outer access when the offload
    /// was built without one.
    ///
    /// # Errors
    ///
    /// As for [`AccelCtx::cached_write_pod`] / [`AccelCtx::outer_write_pod`].
    pub fn tuned_write_pod<T: Pod>(&mut self, addr: Addr, value: &T) -> Result<(), SimError> {
        match self.tuned.take() {
            Some(mut cache) => {
                let result = self.cached_write_pod(&mut cache, addr, value);
                self.tuned = Some(cache);
                result
            }
            None => self.outer_write_pod(addr, value),
        }
    }

    /// Flushes a software cache's dirty data back to main memory.
    ///
    /// # Errors
    ///
    /// As for [`softcache::SoftwareCache::flush`].
    pub fn cache_flush<C: SoftwareCache>(&mut self, cache: &mut C) -> Result<(), SimError> {
        let before = cache.stats();
        let at = self.now;
        let mut backing = CacheBacking {
            main: self.main,
            ls: self.ls,
            dma: self.dma,
        };
        self.now = cache.flush(self.now, &mut backing)?;
        self.trace_cache_delta(at, before, cache.stats());
        Ok(())
    }
}
