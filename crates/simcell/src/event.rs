//! A lightweight, zero-simulated-cycle timeline of machine events.
//!
//! Every event carries the cycle at which it happened on *some* core's
//! clock, plus a structured [`EventKind`]. Recording is disabled by
//! default and costs **host memory only, never simulated cycles**: the
//! determinism regression test pins that enabling the log leaves every
//! cycle count bit-identical. When the log is disabled, recording is a
//! single branch and the backing vector never allocates.
//!
//! The raw log is in *emission* order (host and accelerator clocks
//! interleave, and DMA completions are known at issue time), so
//! consumers that need a strict timeline use [`EventLog::sorted`] or
//! the exporters in [`crate::trace`], which sort stably by cycle.

use std::borrow::Cow;
use std::fmt;

use dma::DmaDirection;

/// Which core's clock an event was stamped against.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CoreId {
    /// The host core.
    Host,
    /// An accelerator core, by index.
    Accel(u16),
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreId::Host => write!(f, "host"),
            CoreId::Accel(index) => write!(f, "accel {index}"),
        }
    }
}

/// What happened.
#[derive(Clone, PartialEq, Debug)]
pub enum EventKind {
    /// An offload thread started on an accelerator.
    OffloadStart {
        /// The accelerator index.
        accel: u16,
        /// Label of the offloaded task ("offload" when unlabeled).
        name: &'static str,
    },
    /// An offload thread finished.
    OffloadEnd {
        /// The accelerator index.
        accel: u16,
    },
    /// The host joined an offload thread.
    Join {
        /// The accelerator index.
        accel: u16,
    },
    /// A free-form annotation from user code.
    ///
    /// Static text records without allocating (see
    /// [`EventLog::note_static`]); owned text is for genuinely dynamic
    /// annotations off the hot path.
    Note {
        /// The annotation text.
        text: Cow<'static, str>,
    },
    /// A named span opened on some core (paired with [`EventKind::SpanEnd`]).
    SpanStart {
        /// The core whose clock stamps the span.
        core: CoreId,
        /// Span label, e.g. `"detectCollisions"`.
        name: &'static str,
    },
    /// A named span closed on some core.
    SpanEnd {
        /// The core whose clock stamps the span.
        core: CoreId,
        /// Span label; must match the innermost open span on this core.
        name: &'static str,
    },
    /// A DMA command was issued by an accelerator.
    DmaIssue {
        /// The issuing accelerator.
        accel: u16,
        /// Tag group of the command (`0..=31`).
        tag: u8,
        /// Transfer size in bytes.
        bytes: u32,
        /// Transfer direction (`Get` into the local store, `Put` out).
        dir: DmaDirection,
        /// Cycle at which the transfer completes (known at issue time —
        /// the engine's timing model is deterministic).
        complete_at: u64,
    },
    /// An accelerator blocked on a DMA tag mask.
    DmaWait {
        /// The waiting accelerator.
        accel: u16,
        /// Raw tag mask waited on (bit *n* = tag *n*).
        mask: u32,
        /// Cycle at which the wait returned (equals the event's `at`
        /// when nothing was in flight — a free wait).
        resumed_at: u64,
    },
    /// An accelerator executed a whole gather plan: a batch of
    /// coalesced DMA descriptors fetching an index list into a packed
    /// local buffer. Stamped at issue; `complete_at` is when the batch
    /// drained (the batch's `dma_wait` returned).
    Gather {
        /// The gathering accelerator.
        accel: u16,
        /// Elements the plan requested.
        elems: u32,
        /// Coalesced descriptors the plan compiled to.
        descriptors: u32,
        /// Total bytes fetched into the packed buffer.
        bytes: u32,
        /// Cycle at which the batch's wait returned.
        complete_at: u64,
    },
    /// A software-cache access hit (possibly several lines at once).
    CacheHit {
        /// The accelerator owning the cache.
        accel: u16,
        /// Line-grain hits this access produced.
        count: u32,
    },
    /// A software-cache access missed and fetched lines.
    CacheMiss {
        /// The accelerator owning the cache.
        accel: u16,
        /// Line-grain misses this access produced.
        count: u32,
        /// Bytes fetched from remote memory to fill them.
        bytes_fetched: u64,
    },
    /// A software cache evicted lines to make room.
    CacheEvict {
        /// The accelerator owning the cache.
        accel: u16,
        /// Lines evicted by this access.
        count: u32,
    },
    /// Local-store allocation high-water mark at the end of an offload.
    LsHighWater {
        /// The accelerator whose local store is reported.
        accel: u16,
        /// Peak allocated bytes observed so far.
        bytes: u32,
    },
    /// The scheduler placed a tile on an accelerator's work queue.
    ///
    /// Zero simulated cost: queue bookkeeping is the scheduler's, not
    /// the machine's. Stamped at the host cycle of the dispatch pass.
    SchedEnqueue {
        /// The accelerator whose queue received the tile.
        accel: u16,
        /// Tile index within the scheduled task.
        tile: u32,
    },
    /// An accelerator ran a tile from `at` (the event cycle) to `end`.
    SchedRun {
        /// The accelerator that executed the tile.
        accel: u16,
        /// Tile index within the scheduled task.
        tile: u32,
        /// Accelerator cycle at which the tile finished.
        end: u64,
        /// Set when the tile was stolen: the queue it originally sat on.
        stolen_from: Option<u16>,
    },
    /// An accelerator sat idle from `at` (the event cycle) to `until`.
    SchedIdle {
        /// The idle accelerator.
        accel: u16,
        /// Accelerator cycle at which the idle gap ended.
        until: u64,
    },
    /// A work-stealing scheduler moved a tile between queues.
    SchedSteal {
        /// The accelerator that stole the tile.
        thief: u16,
        /// The accelerator it was stolen from.
        victim: u16,
        /// Tile index within the scheduled task.
        tile: u32,
        /// Simulated cycles charged to the thief for the steal.
        cost: u64,
    },
    /// A pipeline stage processed one chunk on its accelerator, from
    /// `at` (the event cycle) to `end`.
    ///
    /// Zero simulated cost: the chunk's compute and DMA charge the
    /// clock; this record is bookkeeping.
    PipeRun {
        /// The accelerator the stage runs on.
        accel: u16,
        /// Pipeline stage index (stage 0 is the producer).
        stage: u16,
        /// Chunk index within the stream.
        chunk: u32,
        /// Accelerator cycle at which the chunk finished (push complete).
        end: u64,
    },
    /// A pipeline stage stalled from `at` (the event cycle) to `until`,
    /// either waiting for its input chunk to be produced or blocked by
    /// a full inter-stage queue (backpressure).
    PipeWait {
        /// The stalled accelerator.
        accel: u16,
        /// Pipeline stage index.
        stage: u16,
        /// Chunk index the stage was about to process (input wait) or
        /// hand off (backpressure).
        chunk: u32,
        /// Accelerator cycle at which the stall ended.
        until: u64,
        /// `true` for a full-queue (backpressure) stall, `false` for an
        /// input-not-ready stall.
        backpressure: bool,
    },
    /// The fault plane injected a fault.
    ///
    /// Recording is free (simulated cycles are charged by the fault
    /// itself, e.g. a stall, never by the bookkeeping).
    FaultInjected {
        /// The accelerator the fault hit.
        accel: u16,
        /// What was injected.
        fault: crate::fault::FaultKind,
    },
    /// The runtime took a recovery action after a fault.
    RecoveryApplied {
        /// The accelerator the recovery concerns.
        accel: u16,
        /// What was done.
        recovery: crate::fault::RecoveryKind,
    },
}

/// One timestamped event.
#[derive(Clone, PartialEq, Debug)]
pub struct Event {
    /// Cycle at which the event happened.
    pub at: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// The core whose clock stamped this event.
    ///
    /// Notes are stamped by the host; every accelerator-side kind names
    /// its accelerator.
    pub fn core(&self) -> CoreId {
        match &self.kind {
            EventKind::OffloadStart { accel, .. }
            | EventKind::OffloadEnd { accel }
            | EventKind::DmaIssue { accel, .. }
            | EventKind::DmaWait { accel, .. }
            | EventKind::Gather { accel, .. }
            | EventKind::CacheHit { accel, .. }
            | EventKind::CacheMiss { accel, .. }
            | EventKind::CacheEvict { accel, .. }
            | EventKind::LsHighWater { accel, .. }
            | EventKind::SchedEnqueue { accel, .. }
            | EventKind::SchedRun { accel, .. }
            | EventKind::SchedIdle { accel, .. }
            | EventKind::PipeRun { accel, .. }
            | EventKind::PipeWait { accel, .. }
            | EventKind::FaultInjected { accel, .. }
            | EventKind::RecoveryApplied { accel, .. } => CoreId::Accel(*accel),
            EventKind::SchedSteal { thief, .. } => CoreId::Accel(*thief),
            EventKind::Join { .. } | EventKind::Note { .. } => CoreId::Host,
            EventKind::SpanStart { core, .. } | EventKind::SpanEnd { core, .. } => *core,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            EventKind::OffloadStart { accel, name } => {
                write!(
                    f,
                    "[{:>10}] offload start on accel {accel} ({name})",
                    self.at
                )
            }
            EventKind::OffloadEnd { accel } => {
                write!(f, "[{:>10}] offload end on accel {accel}", self.at)
            }
            EventKind::Join { accel } => write!(f, "[{:>10}] join accel {accel}", self.at),
            EventKind::Note { text } => write!(f, "[{:>10}] {text}", self.at),
            EventKind::SpanStart { core, name } => {
                write!(f, "[{:>10}] {core}: begin {name}", self.at)
            }
            EventKind::SpanEnd { core, name } => {
                write!(f, "[{:>10}] {core}: end   {name}", self.at)
            }
            EventKind::DmaIssue {
                accel,
                tag,
                bytes,
                dir,
                complete_at,
            } => write!(
                f,
                "[{:>10}] accel {accel}: dma_{dir} tag{tag} {bytes} B (completes at {complete_at})",
                self.at
            ),
            EventKind::DmaWait {
                accel,
                mask,
                resumed_at,
            } => write!(
                f,
                "[{:>10}] accel {accel}: dma_wait mask {mask:#010x} (resumed at {resumed_at})",
                self.at
            ),
            EventKind::Gather {
                accel,
                elems,
                descriptors,
                bytes,
                complete_at,
            } => write!(
                f,
                "[{:>10}] accel {accel}: gather {elems} elems via {descriptors} descriptors, \
                 {bytes} B (drained at {complete_at})",
                self.at
            ),
            EventKind::CacheHit { accel, count } => {
                write!(f, "[{:>10}] accel {accel}: cache hit x{count}", self.at)
            }
            EventKind::CacheMiss {
                accel,
                count,
                bytes_fetched,
            } => write!(
                f,
                "[{:>10}] accel {accel}: cache miss x{count} ({bytes_fetched} B fetched)",
                self.at
            ),
            EventKind::CacheEvict { accel, count } => {
                write!(f, "[{:>10}] accel {accel}: cache evict x{count}", self.at)
            }
            EventKind::LsHighWater { accel, bytes } => write!(
                f,
                "[{:>10}] accel {accel}: local-store high water {bytes} B",
                self.at
            ),
            EventKind::SchedEnqueue { accel, tile } => {
                write!(f, "[{:>10}] sched: tile {tile} -> accel {accel}", self.at)
            }
            EventKind::SchedRun {
                accel,
                tile,
                end,
                stolen_from,
            } => match stolen_from {
                Some(victim) => write!(
                    f,
                    "[{:>10}] accel {accel}: run tile {tile} until {end} (stolen from accel {victim})",
                    self.at
                ),
                None => write!(
                    f,
                    "[{:>10}] accel {accel}: run tile {tile} until {end}",
                    self.at
                ),
            },
            EventKind::SchedIdle { accel, until } => {
                write!(f, "[{:>10}] accel {accel}: idle until {until}", self.at)
            }
            EventKind::SchedSteal {
                thief,
                victim,
                tile,
                cost,
            } => write!(
                f,
                "[{:>10}] sched: accel {thief} steals tile {tile} from accel {victim} (+{cost} cycles)",
                self.at
            ),
            EventKind::PipeRun {
                accel,
                stage,
                chunk,
                end,
            } => write!(
                f,
                "[{:>10}] accel {accel}: pipe stage {stage} chunk {chunk} until {end}",
                self.at
            ),
            EventKind::PipeWait {
                accel,
                stage,
                chunk,
                until,
                backpressure,
            } => {
                let why = if *backpressure {
                    "backpressure"
                } else {
                    "input wait"
                };
                write!(
                    f,
                    "[{:>10}] accel {accel}: pipe stage {stage} chunk {chunk} {why} until {until}",
                    self.at
                )
            }
            EventKind::FaultInjected { accel, fault } => {
                use crate::fault::FaultKind;
                write!(f, "[{:>10}] accel {accel}: fault ", self.at)?;
                match fault {
                    FaultKind::DmaCorrupt { tag, bytes } => {
                        write!(f, "dma_corrupt tag{tag} {bytes} B")
                    }
                    FaultKind::DmaDrop { tag, bytes } => write!(f, "dma_drop tag{tag} {bytes} B"),
                    FaultKind::TagTimeout { stall } => {
                        write!(f, "tag_timeout (+{stall} cycles)")
                    }
                    FaultKind::AccelStall { cycles } => {
                        write!(f, "accel_stall (+{cycles} cycles)")
                    }
                    FaultKind::AccelDeath => write!(f, "accel_death"),
                    FaultKind::LsPoison => write!(f, "ls_poison"),
                }
            }
            EventKind::RecoveryApplied { accel, recovery } => {
                use crate::fault::RecoveryKind;
                write!(f, "[{:>10}] accel {accel}: recovery ", self.at)?;
                match recovery {
                    RecoveryKind::Retry {
                        tile,
                        attempt,
                        backoff,
                    } => write!(f, "retry tile {tile} attempt {attempt} (+{backoff} cycles)"),
                    RecoveryKind::Evict { tiles_moved } => {
                        write!(f, "evict ({tiles_moved} tiles redistributed)")
                    }
                    RecoveryKind::HostFallback { tile } => {
                        write!(f, "host_fallback tile {tile}")
                    }
                }
            }
        }
    }
}

/// An append-only event log, disabled by default (recording costs host
/// memory, not simulated cycles).
///
/// # Example
///
/// ```
/// use simcell::{EventKind, EventLog};
///
/// let mut log = EventLog::new();
/// log.note_static(10, "ignored while disabled");
/// assert_eq!(log.len(), 0);
/// assert_eq!(log.capacity(), 0, "a disabled log never allocates");
///
/// log.set_enabled(true);
/// log.note_static(42, "frame 1 begins");
/// assert_eq!(log.len(), 1);
/// assert!(log.events()[0].to_string().contains("frame 1"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    enabled: bool,
    events: Vec<Event>,
}

impl EventLog {
    /// Creates a disabled log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if enabled.
    pub fn record(&mut self, at: u64, kind: EventKind) {
        if self.enabled {
            self.events.push(Event { at, kind });
        }
    }

    /// Records a static annotation without allocating: the text is a
    /// `&'static str`, so enabled-log experiments pay one `Vec` push and
    /// nothing else. Prefer this over [`EventKind::Note`] with an owned
    /// `String` anywhere near a hot path.
    pub fn note_static(&mut self, at: u64, text: &'static str) {
        if self.enabled {
            self.events.push(Event {
                at,
                kind: EventKind::Note {
                    text: Cow::Borrowed(text),
                },
            });
        }
    }

    /// Records a dynamically built annotation (allocates; keep off hot
    /// paths).
    pub fn note(&mut self, at: u64, text: String) {
        if self.enabled {
            self.events.push(Event {
                at,
                kind: EventKind::Note {
                    text: Cow::Owned(text),
                },
            });
        }
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Capacity of the backing storage, in events. Stays 0 for a log
    /// that was never enabled — the allocation-free guarantee the test
    /// suite pins.
    pub fn capacity(&self) -> usize {
        self.events.capacity()
    }

    /// The events sorted stably by cycle (emission order breaks ties, so
    /// causally ordered same-cycle events keep their order).
    pub fn sorted(&self) -> Vec<Event> {
        let mut sorted = self.events.clone();
        sorted.sort_by_key(|e| e.at);
        sorted
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing_and_never_allocates() {
        let mut log = EventLog::new();
        log.record(5, EventKind::Note { text: "x".into() });
        log.note_static(6, "y");
        log.note(7, String::from("z"));
        assert!(log.events().is_empty());
        assert!(log.is_empty());
        assert_eq!(log.capacity(), 0);
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = EventLog::new();
        log.set_enabled(true);
        log.record(
            1,
            EventKind::OffloadStart {
                accel: 0,
                name: "offload",
            },
        );
        log.record(9, EventKind::OffloadEnd { accel: 0 });
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.len(), 2);
        assert_eq!(log.events()[0].at, 1);
        log.clear();
        assert!(log.events().is_empty());
        assert!(log.is_enabled());
    }

    #[test]
    fn note_static_does_not_allocate_text() {
        let mut log = EventLog::new();
        log.set_enabled(true);
        log.note_static(3, "static text");
        match &log.events()[0].kind {
            EventKind::Note { text } => {
                assert!(matches!(text, Cow::Borrowed(_)), "static note must borrow")
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn sorted_is_stable_by_cycle() {
        let mut log = EventLog::new();
        log.set_enabled(true);
        // A DMA completion timestamped in the future, then an earlier
        // local event: sorted() restores the timeline.
        log.record(
            100,
            EventKind::DmaIssue {
                accel: 0,
                tag: 3,
                bytes: 256,
                dir: DmaDirection::Get,
                complete_at: 900,
            },
        );
        log.note_static(50, "earlier");
        log.note_static(50, "same cycle, later emission");
        let sorted = log.sorted();
        assert_eq!(sorted[0].at, 50);
        assert!(sorted[0].to_string().contains("earlier"));
        assert!(sorted[1].to_string().contains("later emission"));
        assert_eq!(sorted[2].at, 100);
    }

    #[test]
    fn cores_are_attributed() {
        let start = Event {
            at: 0,
            kind: EventKind::OffloadStart {
                accel: 2,
                name: "ai",
            },
        };
        assert_eq!(start.core(), CoreId::Accel(2));
        let join = Event {
            at: 0,
            kind: EventKind::Join { accel: 2 },
        };
        assert_eq!(join.core(), CoreId::Host);
        let span = Event {
            at: 0,
            kind: EventKind::SpanStart {
                core: CoreId::Host,
                name: "render",
            },
        };
        assert_eq!(span.core(), CoreId::Host);
    }

    #[test]
    fn display_forms() {
        let e = Event {
            at: 42,
            kind: EventKind::Join { accel: 3 },
        };
        assert!(e.to_string().contains("join accel 3"));
        let e = Event {
            at: 42,
            kind: EventKind::Note {
                text: "frame 1".into(),
            },
        };
        assert!(e.to_string().contains("frame 1"));
        let e = Event {
            at: 7,
            kind: EventKind::DmaIssue {
                accel: 1,
                tag: 5,
                bytes: 128,
                dir: DmaDirection::Put,
                complete_at: 600,
            },
        };
        let s = e.to_string();
        assert!(s.contains("dma_put"));
        assert!(s.contains("tag5"));
        assert!(s.contains("128 B"));
        let e = Event {
            at: 7,
            kind: EventKind::CacheMiss {
                accel: 0,
                count: 2,
                bytes_fetched: 128,
            },
        };
        assert!(e.to_string().contains("cache miss x2"));
    }

    #[test]
    fn pipe_events() {
        let e = Event {
            at: 100,
            kind: EventKind::PipeRun {
                accel: 2,
                stage: 1,
                chunk: 4,
                end: 900,
            },
        };
        assert_eq!(e.core(), CoreId::Accel(2));
        let s = e.to_string();
        assert!(s.contains("pipe stage 1 chunk 4 until 900"), "{s}");

        let e = Event {
            at: 100,
            kind: EventKind::PipeWait {
                accel: 3,
                stage: 2,
                chunk: 0,
                until: 350,
                backpressure: true,
            },
        };
        assert_eq!(e.core(), CoreId::Accel(3));
        assert!(e.to_string().contains("backpressure until 350"));
        let e = Event {
            at: 100,
            kind: EventKind::PipeWait {
                accel: 3,
                stage: 2,
                chunk: 0,
                until: 350,
                backpressure: false,
            },
        };
        assert!(e.to_string().contains("input wait until 350"));
    }

    #[test]
    fn fault_and_recovery_events() {
        use crate::fault::{FaultKind, RecoveryKind};

        let e = Event {
            at: 9,
            kind: EventKind::FaultInjected {
                accel: 4,
                fault: FaultKind::DmaDrop { tag: 26, bytes: 64 },
            },
        };
        assert_eq!(e.core(), CoreId::Accel(4));
        let s = e.to_string();
        assert!(s.contains("fault dma_drop"), "{s}");
        assert!(s.contains("tag26"), "{s}");

        let e = Event {
            at: 9,
            kind: EventKind::RecoveryApplied {
                accel: 4,
                recovery: RecoveryKind::Retry {
                    tile: 7,
                    attempt: 2,
                    backoff: 400,
                },
            },
        };
        assert_eq!(e.core(), CoreId::Accel(4));
        let s = e.to_string();
        assert!(s.contains("retry tile 7 attempt 2"), "{s}");

        let e = Event {
            at: 1,
            kind: EventKind::RecoveryApplied {
                accel: 0,
                recovery: RecoveryKind::HostFallback { tile: 3 },
            },
        };
        assert!(e.to_string().contains("host_fallback tile 3"));
    }
}
