//! A lightweight timeline of machine events.

use std::fmt;

/// What happened.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// An offload thread started on an accelerator.
    OffloadStart {
        /// The accelerator index.
        accel: u16,
    },
    /// An offload thread finished.
    OffloadEnd {
        /// The accelerator index.
        accel: u16,
    },
    /// The host joined an offload thread.
    Join {
        /// The accelerator index.
        accel: u16,
    },
    /// A free-form annotation from user code.
    Note {
        /// The annotation text.
        text: String,
    },
}

/// One timestamped event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Event {
    /// Cycle at which the event happened.
    pub at: u64,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            EventKind::OffloadStart { accel } => {
                write!(f, "[{:>10}] offload start on accel {accel}", self.at)
            }
            EventKind::OffloadEnd { accel } => {
                write!(f, "[{:>10}] offload end on accel {accel}", self.at)
            }
            EventKind::Join { accel } => write!(f, "[{:>10}] join accel {accel}", self.at),
            EventKind::Note { text } => write!(f, "[{:>10}] {text}", self.at),
        }
    }
}

/// An append-only event log, disabled by default (recording costs host
/// memory, not simulated cycles).
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    enabled: bool,
    events: Vec<Event>,
}

impl EventLog {
    /// Creates a disabled log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if enabled.
    pub fn record(&mut self, at: u64, kind: EventKind) {
        if self.enabled {
            self.events.push(Event { at, kind });
        }
    }

    /// The recorded events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::new();
        log.record(5, EventKind::Note { text: "x".into() });
        assert!(log.events().is_empty());
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = EventLog::new();
        log.set_enabled(true);
        log.record(1, EventKind::OffloadStart { accel: 0 });
        log.record(9, EventKind::OffloadEnd { accel: 0 });
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events()[0].at, 1);
        log.clear();
        assert!(log.events().is_empty());
        assert!(log.is_enabled());
    }

    #[test]
    fn display_forms() {
        let e = Event {
            at: 42,
            kind: EventKind::Join { accel: 3 },
        };
        assert!(e.to_string().contains("join accel 3"));
        let e = Event {
            at: 42,
            kind: EventKind::Note {
                text: "frame 1".into(),
            },
        };
        assert!(e.to_string().contains("frame 1"));
    }
}
