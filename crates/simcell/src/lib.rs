//! A deterministic, cycle-accounted heterogeneous machine simulator.
//!
//! The paper's experiments ran on the Cell BE inside the PlayStation 3: a
//! host core (PPE) with ordinary access to main memory, plus accelerator
//! cores (SPEs) that can *only* address their private 256 KiB local
//! stores and must move everything else with explicit, tagged DMA. This
//! crate simulates that machine shape so every experiment in the
//! workspace runs on a laptop.
//!
//! # Execution model
//!
//! Simulation is *timed but sequential*: each core owns a cycle counter,
//! and work is charged to the counter of the core that performs it.
//! An [`Machine::offload`] call runs the accelerator closure immediately
//! (to completion) while recording the interval it would have occupied on
//! the accelerator; the host's counter keeps advancing through whatever
//! the host does next; [`Machine::join`] advances the host to the
//! maximum of both, exactly the fork/join semantics of the paper's
//! Figure 2 frame loop ("parallel, distinct tasks with well-defined
//! synchronisation points"). DMA commands complete at issue time plus
//! setup, streaming and latency costs; `wait` advances the waiting core
//! to the completion time. Everything is deterministic: the same program
//! produces the same cycle counts on every run.
//!
//! # Example
//!
//! ```
//! use simcell::{Machine, MachineConfig};
//! use memspace::{Pod, SpaceId};
//!
//! # fn main() -> Result<(), simcell::SimError> {
//! let mut machine = Machine::new(MachineConfig::default())?;
//! let data = machine.alloc_main_pod::<u32>()?;
//! machine.host_write_pod(data, &41u32)?;
//!
//! let handle = machine.offload(0).spawn(|ctx| -> Result<(), simcell::SimError> {
//!     let v: u32 = ctx.outer_read_pod(data)?;
//!     ctx.compute(100);
//!     ctx.outer_write_pod(data, &(v + 1))?;
//!     Ok(())
//! })?;
//! machine.host_compute(500); // host works in parallel
//! machine.join(handle)?;
//! assert_eq!(machine.host_read_pod::<u32>(data)?, 42);
//! # Ok(())
//! # }
//! ```

//! # Observability
//!
//! Every machine carries an always-on [`trace::MachineStats`] counter
//! block and an opt-in [`EventLog`] timeline. Both are zero
//! *simulated* cost: recording spends host memory, never cycles, so
//! traced and untraced runs produce bit-identical results. See the
//! [`trace`] module for the Chrome-trace/Perfetto exporter and the
//! repository's `PROFILING.md` for the reading guide.

#![warn(missing_docs)]

pub mod cost;
pub mod ctx;
pub mod error;
pub mod event;
pub mod fault;
pub mod gather;
pub mod machine;
pub mod trace;

pub use cost::CostModel;
pub use ctx::AccelCtx;
pub use error::{DispatchFault, SimError};
pub use event::{CoreId, Event, EventKind, EventLog};
pub use fault::{FaultError, FaultKind, FaultPlan, RecoveryKind};
pub use gather::{GatherDescriptor, GatherPlan};
pub use machine::{Machine, MachineConfig, OffloadBuilder, OffloadHandle, OffloadParts};
pub use memspace::{AccessMode, ModeDecl, ModeSet};
pub use trace::{
    ascii_timeline, chrome_trace_json, parse_chrome_trace, AccessRecord, AccessTrace, ChromeEvent,
    MachineStats, TraceOp,
};
