//! The simulated machine: host core + accelerators.

use dma::{DmaEngine, DmaStats, RaceReport};
use memspace::{AccessMode, Addr, MemoryRegion, ModeSet, Pod, SpaceId, SpaceKind};
use softcache::CacheChoice;

use crate::cost::CostModel;
use crate::ctx::AccelCtx;
use crate::error::SimError;
use crate::event::{CoreId, EventKind, EventLog};
use crate::fault::{FaultError, FaultKind, FaultPlan, FaultPlane, RecoveryKind};
use crate::gather::GatherPlan;
use crate::trace::MachineStats;

/// Machine shape and cost parameters.
///
/// The default is PS3-like: six available accelerators with 256 KiB
/// local stores and a 16 MiB simulated main memory (large enough for
/// every workload in the workspace while keeping regions cheap to
/// clone).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of accelerator cores.
    pub accel_count: u16,
    /// Main-memory capacity in bytes.
    pub main_capacity: u32,
    /// Local-store capacity per accelerator, in bytes.
    pub local_store_size: u32,
    /// Per-accelerator staging buffer for synchronous outer accesses.
    pub staging_size: u32,
    /// The cost model.
    pub cost: CostModel,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            accel_count: 6,
            main_capacity: 16 * 1024 * 1024,
            local_store_size: memspace::LOCAL_STORE_SIZE,
            staging_size: 4096,
            cost: CostModel::cell_like(),
        }
    }
}

impl MachineConfig {
    /// A smaller machine for unit tests (1 accelerator, 1 MiB main).
    pub fn small() -> MachineConfig {
        MachineConfig {
            accel_count: 1,
            main_capacity: 1024 * 1024,
            ..MachineConfig::default()
        }
    }
}

#[derive(Debug)]
struct Accel {
    ls: MemoryRegion,
    dma: DmaEngine,
    busy_until: u64,
    busy_cycles: u64,
    staging: Addr,
}

/// A completed-but-unjoined offload thread.
///
/// Produced by [`Machine::offload`]; pass it to [`Machine::join`] to
/// synchronise the host with the accelerator and obtain the closure's
/// result (the `__offload_join` of paper §3).
#[must_use = "an offload handle must be joined for the host clock to observe the accelerator"]
#[derive(Debug)]
pub struct OffloadHandle<R> {
    result: R,
    accel: u16,
    start: u64,
    end: u64,
}

impl<R> OffloadHandle<R> {
    /// The accelerator the thread ran on.
    pub fn accel(&self) -> u16 {
        self.accel
    }

    /// Cycle at which the thread started on the accelerator.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Cycle at which the thread finished on the accelerator.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Cycles the thread occupied the accelerator.
    pub fn elapsed(&self) -> u64 {
        self.end - self.start
    }

    /// The closure's result, without joining: the handle stays
    /// joinable and the host clock does not move. Runtimes that keep
    /// many handles in flight (the pipeline) peek to learn whether a
    /// finished item faulted before deciding to launch its dependents.
    pub fn peek(&self) -> &R {
        &self.result
    }
}

/// A fluent, in-flight offload: created by [`Machine::offload`], it
/// accumulates the label and tuned-cache choice and launches with
/// [`OffloadBuilder::spawn`] (returning a joinable [`OffloadHandle`])
/// or [`OffloadBuilder::run`] (spawn + join in one step).
///
/// ```
/// use simcell::{Machine, MachineConfig, SimError};
///
/// # fn main() -> Result<(), SimError> {
/// let mut machine = Machine::new(MachineConfig::small())?;
/// let handle = machine
///     .offload(0)
///     .label("calculateStrategy")
///     .spawn(|ctx| ctx.compute(500))?;
/// machine.join(handle);
/// # Ok(())
/// # }
/// ```
#[must_use = "an offload builder does nothing until spawn or run"]
#[derive(Debug)]
pub struct OffloadBuilder<'m> {
    machine: &'m mut Machine,
    accel: u16,
    label: &'static str,
    cache: CacheChoice,
    faults: Option<FaultPlan>,
    modes: ModeSet,
    gathers: Vec<GatherPlan>,
}

impl<'m> OffloadBuilder<'m> {
    /// Names the offload: the label shows up on its trace slice (e.g.
    /// `"calculateStrategy"` in the Figure 2 frame) instead of the
    /// generic `"offload"`. Cycle accounting is identical.
    pub fn label(mut self, name: &'static str) -> OffloadBuilder<'m> {
        self.label = name;
        self
    }

    /// Routes the offload's tuned accesses through the cache an
    /// autotuned [`CacheChoice`] describes: the cache is built from the
    /// accelerator's local store when the block starts (allocation only
    /// — zero cycles) and its dirty lines are flushed, on the
    /// accelerator clock, when the closure returns. Inside the block,
    /// [`AccelCtx::tuned_read_pod`] / [`AccelCtx::tuned_write_pod`] hit
    /// this cache; with the default [`CacheChoice::Naive`] they fall
    /// back to plain outer accesses and nothing is built.
    pub fn cache(mut self, choice: CacheChoice) -> OffloadBuilder<'m> {
        self.cache = choice;
        self
    }

    /// Installs `plan` on the machine right before launch, arming its
    /// deterministic fault plane (see [`crate::fault`]). The plan
    /// persists on the machine after the offload, so a sequence of
    /// launches draws one continuous fault schedule; clear it with
    /// [`Machine::clear_fault_plan`].
    pub fn faults(mut self, plan: FaultPlan) -> OffloadBuilder<'m> {
        self.faults = Some(plan);
        self
    }

    /// Declares that the offload only *loads* from `[addr, addr+len)`.
    ///
    /// A read declaration is a license the runtime spends twice: tuned
    /// caches serving the range never allocate dirty lines for it, and
    /// accessors skip the write-back DMA entirely (counted in
    /// [`crate::MachineStats::dma_writebacks_elided`]). It is also a
    /// contract: once *any* mode is declared on an offload, a DMA put
    /// into a read-declared (or undeclared) range fails with
    /// [`SimError::UndeclaredWrite`] instead of silently journaling.
    pub fn reads(mut self, addr: Addr, len: u32) -> OffloadBuilder<'m> {
        self.modes.declare(addr, len, AccessMode::Read);
        self
    }

    /// Declares that the offload *fully overwrites* `[addr, addr+len)`
    /// without reading the previous contents.
    ///
    /// Under an armed fault plan the transactional put journal skips
    /// the pre-image snapshot for such ranges (rollback restores them
    /// by re-running the producer, not by copying bytes back), counted
    /// in [`crate::MachineStats::journal_snapshots_skipped`].
    pub fn writes(mut self, addr: Addr, len: u32) -> OffloadBuilder<'m> {
        self.modes.declare(addr, len, AccessMode::Write);
        self
    }

    /// Declares that the offload both reads and writes
    /// `[addr, addr+len)` (a read-modify-write buffer). Updates keep
    /// the full journaling discipline; the declaration's value is
    /// making every *other* store site checkable.
    pub fn updates(mut self, addr: Addr, len: u32) -> OffloadBuilder<'m> {
        self.modes.declare(addr, len, AccessMode::Update);
        self
    }

    /// Declares a gather the kernel needs up front: `indices` into the
    /// `elem_size`-byte-element array at `base` in main memory.
    ///
    /// The plan executes on the accelerator clock right before the
    /// kernel closure runs — coalesced into the fewest DMA descriptors
    /// that cover the index list and drained with a single wait — and
    /// the packed local buffer is handed to the kernel via
    /// [`AccelCtx::gathered`] in declaration order. This replaces the
    /// hand-rolled per-element accessor loop for irregular inputs whose
    /// index list is known at launch; for data-*dependent* gathers
    /// (e.g. a BFS frontier discovered mid-kernel) call
    /// [`AccelCtx::gather`] directly.
    ///
    /// Declaring a gather also declares its main-memory span as
    /// [`reads`](OffloadBuilder::reads): a gather is a declared read,
    /// so the offload joins the strict access-mode contract and every
    /// *store* the kernel makes must be declared too.
    pub fn gather(mut self, base: Addr, elem_size: u32, indices: Vec<u32>) -> OffloadBuilder<'m> {
        let plan = GatherPlan::new(base, elem_size, indices);
        if let Some((start, len)) = plan.span() {
            self.modes.declare(start, len, AccessMode::Read);
        }
        self.gathers.push(plan);
        self
    }

    /// Replaces the builder's declarations with a prebuilt [`ModeSet`]
    /// — the bulk form of [`OffloadBuilder::reads`] /
    /// [`OffloadBuilder::writes`] / [`OffloadBuilder::updates`] used by
    /// front-ends (schedulers, compiled offload-lang programs) that
    /// assemble declarations away from the call site.
    pub fn with_modes(mut self, modes: ModeSet) -> OffloadBuilder<'m> {
        self.modes = modes;
        self
    }

    /// The target accelerator index.
    pub fn accel(&self) -> u16 {
        self.accel
    }

    /// Launches the closure as an offload thread and returns the
    /// joinable handle (see [`Machine::join`]).
    ///
    /// The closure runs to completion immediately (the simulation is
    /// sequential) against an [`AccelCtx`] whose clock starts when the
    /// accelerator is free; the host is charged only the launch
    /// overhead and keeps its own clock. Local-store allocations made
    /// inside the closure are released when it returns.
    ///
    /// # Errors
    ///
    /// Fails if the accelerator does not exist or the local store
    /// cannot fit the configured tuned cache.
    pub fn spawn<R>(
        self,
        f: impl FnOnce(&mut AccelCtx<'_>) -> R,
    ) -> Result<OffloadHandle<R>, SimError> {
        let OffloadBuilder {
            machine,
            accel,
            label,
            cache,
            faults,
            modes,
            gathers,
        } = self;
        if let Some(plan) = faults {
            machine.install_fault_plan(plan);
        }
        machine.launch(accel, label, cache, modes, gathers, f)
    }

    /// Launches and joins immediately (no host work in between) — the
    /// convenience for purely sequential offload use.
    ///
    /// # Errors
    ///
    /// As for [`OffloadBuilder::spawn`].
    pub fn run<R>(self, f: impl FnOnce(&mut AccelCtx<'_>) -> R) -> Result<R, SimError> {
        let OffloadBuilder {
            machine,
            accel,
            label,
            cache,
            faults,
            modes,
            gathers,
        } = self;
        if let Some(plan) = faults {
            machine.install_fault_plan(plan);
        }
        let handle = machine.launch(accel, label, cache, modes, gathers, f)?;
        Ok(machine.join(handle))
    }

    /// Dissolves the builder back into its parts, for scheduler
    /// front-ends layered on top of the machine (e.g.
    /// `offload_rt::sched`, which fans the configured label, cache
    /// choice and fault plan out over several accelerators).
    pub fn into_parts(self) -> OffloadParts<'m> {
        OffloadParts {
            machine: self.machine,
            accel: self.accel,
            label: self.label,
            cache: self.cache,
            faults: self.faults,
            modes: self.modes,
            gathers: self.gathers,
        }
    }
}

/// The dissolved contents of an [`OffloadBuilder`], handed to
/// scheduler front-ends by [`OffloadBuilder::into_parts`].
///
/// A struct rather than a tuple so front-ends keep compiling (and stay
/// readable) as the builder grows new knobs.
#[derive(Debug)]
pub struct OffloadParts<'m> {
    /// The machine the builder was created on.
    pub machine: &'m mut Machine,
    /// The accelerator the builder targeted.
    pub accel: u16,
    /// The configured label ("offload" when unset).
    pub label: &'static str,
    /// The configured tuned-cache choice.
    pub cache: CacheChoice,
    /// The fault plan to install before launching, if any.
    pub faults: Option<FaultPlan>,
    /// The declared access modes (empty = legacy permissive offload).
    pub modes: ModeSet,
    /// Gather plans declared on the builder, in declaration order.
    pub gathers: Vec<GatherPlan>,
}

/// The simulated heterogeneous machine.
///
/// See the crate documentation for the execution model and an example.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    main: MemoryRegion,
    accels: Vec<Accel>,
    host_now: u64,
    events: EventLog,
    stats: MachineStats,
    accesses: softcache::AccessTrace,
    faults: FaultPlane,
    world_seed: u64,
}

// Workers in a sim farm own machines outright and carry them across OS
// threads; keep that a compile-time guarantee rather than an accident
// of today's field types.
const fn _assert_send<T: Send>() {}
const _: () = _assert_send::<Machine>();

impl Machine {
    /// Builds a machine.
    ///
    /// # Errors
    ///
    /// Rejects configurations with no accelerators, or staging buffers
    /// that do not fit the local store.
    pub fn new(config: MachineConfig) -> Result<Machine, SimError> {
        if config.accel_count == 0 {
            return Err(SimError::BadConfig {
                reason: "at least one accelerator is required".into(),
            });
        }
        if config.staging_size == 0 || config.staging_size >= config.local_store_size {
            return Err(SimError::BadConfig {
                reason: format!(
                    "staging size {} must be positive and smaller than the local store ({})",
                    config.staging_size, config.local_store_size
                ),
            });
        }
        let main = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, config.main_capacity);
        let mut accels = Vec::with_capacity(usize::from(config.accel_count));
        for index in 0..config.accel_count {
            let space = SpaceId::local_store(index);
            let mut ls = MemoryRegion::new(
                space,
                SpaceKind::LocalStore { accel: index },
                config.local_store_size,
            );
            let staging = ls.alloc(config.staging_size, memspace::DMA_ALIGN)?;
            let mut dma = DmaEngine::with_timing(space, config.cost.dma);
            dma.set_race_mode(dma::RaceMode::Record);
            accels.push(Accel {
                ls,
                dma,
                busy_until: 0,
                busy_cycles: 0,
                staging,
            });
        }
        Ok(Machine {
            config,
            main,
            accels,
            host_now: 0,
            events: EventLog::new(),
            stats: MachineStats::default(),
            accesses: softcache::AccessTrace::new(),
            faults: FaultPlane::new(),
            world_seed: 0,
        })
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.config.cost
    }

    /// Number of accelerators.
    pub fn accel_count(&self) -> u16 {
        self.config.accel_count
    }

    /// The host core's current cycle.
    pub fn host_now(&self) -> u64 {
        self.host_now
    }

    /// The event log (disabled by default).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Mutable access to the event log, e.g. to enable it.
    pub fn events_mut(&mut self) -> &mut EventLog {
        &mut self.events
    }

    /// The access trace capturing offload outer/cached accesses for the
    /// cache-policy autotuner (disabled by default; allocation-free
    /// while disabled). Hand its records to `softcache::autotune`.
    pub fn access_trace(&self) -> &softcache::AccessTrace {
        &self.accesses
    }

    /// Mutable access to the access trace, e.g. to enable capture with
    /// `access_trace_mut().set_enabled(true)` before an offload.
    pub fn access_trace_mut(&mut self) -> &mut softcache::AccessTrace {
        &mut self.accesses
    }

    /// The always-on machine counter block (see [`MachineStats`]).
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Resets the counter block (e.g. between measured phases). The
    /// event log, clocks, and memories are untouched.
    pub fn reset_stats(&mut self) {
        self.stats = MachineStats::default();
    }

    /// Restores the machine to the state a fresh [`Machine::new`] with
    /// the same configuration would have, then tags it with `seed`:
    /// every memory region is zeroed and its allocator rewound, the DMA
    /// engines, clocks, stats, event log, access trace, and fault plane
    /// all return to their as-constructed defaults, and the per-accel
    /// staging buffers are re-carved at their original addresses.
    ///
    /// The backing storage is reused, so a reset allocates nothing —
    /// this is the arena-reuse path the sim farm leans on to recycle
    /// worker machines between worlds. A world run on a recycled
    /// machine is bit-identical to the same world run on a fresh one
    /// (pinned by test).
    pub fn reset_for_seed(&mut self, seed: u64) {
        self.host_now = 0;
        self.main.reset();
        for accel in &mut self.accels {
            accel.ls.reset();
            accel.dma.reset();
            accel.busy_until = 0;
            accel.busy_cycles = 0;
            // The staging carve-out succeeded at construction against
            // the same capacity, so it cannot fail after a rewind; it
            // lands back at the identical address.
            accel.staging = accel
                .ls
                .alloc(self.config.staging_size, memspace::DMA_ALIGN)
                .expect("staging buffer fit at construction");
        }
        self.events.clear();
        self.events.set_enabled(false);
        self.stats = MachineStats::default();
        self.accesses.clear();
        self.accesses.set_enabled(false);
        self.faults.reset();
        self.world_seed = seed;
    }

    /// The seed the machine was last reset for (0 on a fresh machine).
    pub fn world_seed(&self) -> u64 {
        self.world_seed
    }

    /// A 64-bit FNV-1a digest of the observable end-of-run state: every
    /// allocated main-memory byte, the host clock, and each
    /// accelerator's busy-cycle total. Two runs that diverge anywhere
    /// the simulation can observe produce different digests, which is
    /// what the farm determinism gate compares between a farm world and
    /// its solo twin.
    pub fn world_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |byte: u8| {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        };
        let used = self.main.capacity() - self.main.bytes_free();
        let bytes = self
            .main
            .read_bytes(Addr::new(SpaceId::MAIN, 0), used)
            .expect("the allocated extent is in bounds");
        for &byte in bytes {
            mix(byte);
        }
        for byte in self.host_now.to_le_bytes() {
            mix(byte);
        }
        for accel in &self.accels {
            for byte in accel.busy_cycles.to_le_bytes() {
                mix(byte);
            }
        }
        hash
    }

    /// A 64-bit FNV-1a digest of every allocated main-memory byte —
    /// [`Machine::world_hash`] without the clocks. Two executions that
    /// schedule the same work differently (e.g. a pipeline vs. the same
    /// stages run sequentially) necessarily differ in busy-cycle
    /// totals, so `world_hash` cannot compare them; `memory_hash` is
    /// the "same final world, different schedule" check.
    pub fn memory_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let used = self.main.capacity() - self.main.bytes_free();
        let bytes = self
            .main
            .read_bytes(Addr::new(SpaceId::MAIN, 0), used)
            .expect("the allocated extent is in bounds");
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }

    // ---- fault plane -------------------------------------------------------

    /// Arms the deterministic fault plane with `plan` (see
    /// [`crate::fault`]): the plan's RNG stream is reset to its seed and
    /// every accelerator is revived. With no plan installed, every
    /// fault hook is a single always-false branch — the zero-cost
    /// guarantee the determinism tests pin.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.faults.install(plan);
    }

    /// Disarms the fault plane and revives every accelerator.
    pub fn clear_fault_plan(&mut self) {
        self.faults.clear();
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.plan()
    }

    /// True if the fault plane has killed accelerator `accel`.
    ///
    /// # Errors
    ///
    /// Fails if `accel` does not exist.
    pub fn accel_is_dead(&self, accel: u16) -> Result<bool, SimError> {
        self.check_accel(accel)?;
        Ok(self.faults.is_dead(accel))
    }

    /// Cycles accelerator `accel` has spent executing offload threads.
    ///
    /// # Errors
    ///
    /// Fails if `accel` does not exist.
    pub fn accel_busy_cycles(&self, accel: u16) -> Result<u64, SimError> {
        self.check_accel(accel)?;
        Ok(self.accels[usize::from(accel)].busy_cycles)
    }

    /// Peak local-store allocation (bytes) accelerator `accel` ever
    /// reached, across scoped offload blocks.
    ///
    /// # Errors
    ///
    /// Fails if `accel` does not exist.
    pub fn ls_high_water(&self, accel: u16) -> Result<u32, SimError> {
        self.check_accel(accel)?;
        Ok(self.accels[usize::from(accel)].ls.alloc_high_water())
    }

    /// Opens a named span on the host timeline (zero simulated cycles;
    /// a no-op unless the event log is enabled). Pair with
    /// [`Machine::span_end`] using the same `name`.
    pub fn span_start(&mut self, name: &'static str) {
        self.events.record(
            self.host_now,
            EventKind::SpanStart {
                core: CoreId::Host,
                name,
            },
        );
    }

    /// Closes a named span on the host timeline.
    pub fn span_end(&mut self, name: &'static str) {
        self.events.record(
            self.host_now,
            EventKind::SpanEnd {
                core: CoreId::Host,
                name,
            },
        );
    }

    /// Records a static annotation at the host's current cycle without
    /// allocating (see [`EventLog::note_static`]).
    pub fn note_static(&mut self, text: &'static str) {
        self.events.note_static(self.host_now, text);
    }

    fn check_accel(&self, index: u16) -> Result<(), SimError> {
        if index >= self.config.accel_count {
            return Err(SimError::NoSuchAccel {
                index,
                count: self.config.accel_count,
            });
        }
        Ok(())
    }

    // ---- main memory (host view) -----------------------------------------

    /// Direct, *cost-free* access to main memory, for scenario setup and
    /// result inspection outside the measured region.
    #[inline]
    pub fn main(&self) -> &MemoryRegion {
        &self.main
    }

    /// Direct, cost-free mutable access to main memory (setup only).
    #[inline]
    pub fn main_mut(&mut self) -> &mut MemoryRegion {
        &mut self.main
    }

    /// Allocates `size` bytes of main memory.
    ///
    /// # Errors
    ///
    /// Fails when main memory is exhausted.
    pub fn alloc_main(&mut self, size: u32, align: u32) -> Result<Addr, SimError> {
        Ok(self.main.alloc(size, align)?)
    }

    /// Allocates room for one `T` in main memory.
    ///
    /// # Errors
    ///
    /// As for [`Machine::alloc_main`].
    pub fn alloc_main_pod<T: Pod>(&mut self) -> Result<Addr, SimError> {
        Ok(self.main.alloc_pod::<T>()?)
    }

    /// Allocates room for `count` consecutive `T`s in main memory.
    ///
    /// # Errors
    ///
    /// As for [`Machine::alloc_main`].
    pub fn alloc_main_slice<T: Pod>(&mut self, count: u32) -> Result<Addr, SimError> {
        Ok(self.main.alloc_pod_slice::<T>(count)?)
    }

    fn host_cycles(&self, bytes: u32) -> u64 {
        // Host accesses go through a conventional cache hierarchy; charge
        // per cache line touched (amortised cost per 64-byte line).
        self.config.cost.host_mem_access * u64::from(bytes.div_ceil(64).max(1))
    }

    /// Reads a `T` from main memory on the host, charging host time.
    ///
    /// # Errors
    ///
    /// Fails on bounds or space violations.
    pub fn host_read_pod<T: Pod>(&mut self, addr: Addr) -> Result<T, SimError> {
        self.host_now += self.host_cycles(T::SIZE as u32);
        self.stats.host_bytes_read += T::SIZE as u64;
        Ok(self.main.read_pod(addr)?)
    }

    /// Writes a `T` to main memory on the host, charging host time.
    ///
    /// # Errors
    ///
    /// Fails on bounds or space violations.
    pub fn host_write_pod<T: Pod>(&mut self, addr: Addr, value: &T) -> Result<(), SimError> {
        self.host_now += self.host_cycles(T::SIZE as u32);
        self.stats.host_bytes_written += T::SIZE as u64;
        Ok(self.main.write_pod(addr, value)?)
    }

    /// Reads `count` consecutive `T`s on the host, charging host time.
    ///
    /// # Errors
    ///
    /// Fails on bounds or space violations.
    pub fn host_read_slice<T: Pod>(&mut self, addr: Addr, count: u32) -> Result<Vec<T>, SimError> {
        self.host_now += self.host_cycles((T::SIZE as u32) * count);
        self.stats.host_bytes_read += (T::SIZE as u64) * u64::from(count);
        Ok(self.main.read_pod_slice(addr, count)?)
    }

    /// Writes consecutive `T`s on the host, charging host time.
    ///
    /// # Errors
    ///
    /// Fails on bounds or space violations.
    pub fn host_write_slice<T: Pod>(&mut self, addr: Addr, values: &[T]) -> Result<(), SimError> {
        self.host_now += self.host_cycles((T::SIZE * values.len()) as u32);
        self.stats.host_bytes_written += (T::SIZE * values.len()) as u64;
        Ok(self.main.write_pod_slice(addr, values)?)
    }

    /// Reads raw bytes on the host, charging host time per cache line.
    ///
    /// # Errors
    ///
    /// Fails on bounds or space violations.
    pub fn host_read_bytes(&mut self, addr: Addr, out: &mut [u8]) -> Result<(), SimError> {
        self.host_now += self.host_cycles(out.len() as u32);
        self.stats.host_bytes_read += out.len() as u64;
        Ok(self.main.read_into(addr, out)?)
    }

    /// Writes raw bytes on the host, charging host time per cache line.
    ///
    /// # Errors
    ///
    /// Fails on bounds or space violations.
    pub fn host_write_bytes(&mut self, addr: Addr, data: &[u8]) -> Result<(), SimError> {
        self.host_now += self.host_cycles(data.len() as u32);
        self.stats.host_bytes_written += data.len() as u64;
        Ok(self.main.write_bytes(addr, data)?)
    }

    /// Charges `cycles` of host computation.
    #[inline]
    pub fn host_compute(&mut self, cycles: u64) {
        self.host_now += cycles;
    }

    // ---- offload ----------------------------------------------------------

    /// Begins a fluent offload onto accelerator `accel`.
    ///
    /// The returned [`OffloadBuilder`] carries the optional label and
    /// tuned-cache choice; finish it with [`OffloadBuilder::spawn`] (for
    /// a joinable handle) or [`OffloadBuilder::run`] (spawn + join):
    ///
    /// ```
    /// use simcell::{Machine, MachineConfig, SimError};
    ///
    /// # fn main() -> Result<(), SimError> {
    /// let mut machine = Machine::new(MachineConfig::small())?;
    /// let cycles = machine
    ///     .offload(0)
    ///     .label("ai")
    ///     .run(|ctx| {
    ///         let t0 = ctx.now();
    ///         ctx.compute(100);
    ///         ctx.now() - t0
    ///     })?;
    /// assert_eq!(cycles, 100);
    /// # Ok(())
    /// # }
    /// ```
    pub fn offload(&mut self, accel: u16) -> OffloadBuilder<'_> {
        OffloadBuilder {
            machine: self,
            accel,
            label: "offload",
            cache: CacheChoice::Naive,
            faults: None,
            modes: ModeSet::new(),
            gathers: Vec::new(),
        }
    }

    /// The full launch path every offload goes through: charge the host
    /// the launch overhead, run the closure on the accelerator clock
    /// (building and flushing the builder's tuned cache around it), and
    /// hand back the joinable handle.
    fn launch<R>(
        &mut self,
        accel: u16,
        name: &'static str,
        choice: CacheChoice,
        modes: ModeSet,
        gathers: Vec<GatherPlan>,
        f: impl FnOnce(&mut AccelCtx<'_>) -> R,
    ) -> Result<OffloadHandle<R>, SimError> {
        self.check_accel(accel)?;
        // A launch on a known-dead accelerator fails fast and free: the
        // runtime already knows, so no launch overhead is charged.
        if self.faults.active() && self.faults.is_dead(accel) {
            return Err(FaultError::AccelDead { accel }.into());
        }
        self.host_now += self.config.cost.offload_launch;
        // Fault plane: one death roll and one stall roll per launch (a
        // zero rate skips its draw entirely). A fresh death still costs
        // the host the launch overhead it just paid to discover it.
        if self.faults.active() {
            let plan = *self.faults.plan().expect("active plane has a plan");
            if self.faults.roll(plan.accel_death) {
                self.faults.mark_dead(accel);
                self.stats.faults_injected += 1;
                self.stats.fault_deaths += 1;
                // In-flight transfers die with the core.
                self.accels[usize::from(accel)].dma.purge();
                self.events.record(
                    self.host_now,
                    EventKind::FaultInjected {
                        accel,
                        fault: FaultKind::AccelDeath,
                    },
                );
                return Err(FaultError::AccelDead { accel }.into());
            }
        }
        self.stats.offloads += 1;
        let span = (self.stats.offloads - 1) as u32;
        let slot = &mut self.accels[usize::from(accel)];
        let mut start = self.host_now.max(slot.busy_until);
        if self.faults.active() {
            let plan = *self.faults.plan().expect("active plane has a plan");
            if self.faults.roll(plan.accel_stall) {
                self.stats.faults_injected += 1;
                self.stats.fault_stalls += 1;
                self.stats.fault_stall_cycles += plan.stall_cycles;
                self.events.record(
                    start,
                    EventKind::FaultInjected {
                        accel,
                        fault: FaultKind::AccelStall {
                            cycles: plan.stall_cycles,
                        },
                    },
                );
                start += plan.stall_cycles;
            }
        }
        self.events
            .record(start, EventKind::OffloadStart { accel, name });
        let mark = slot.ls.save_alloc();
        let mut ctx = AccelCtx {
            now: start,
            cost: self.config.cost,
            accel_index: accel,
            main: &mut self.main,
            ls: &mut slot.ls,
            dma: &mut slot.dma,
            staging: slot.staging,
            staging_size: self.config.staging_size,
            events: &mut self.events,
            stats: &mut self.stats,
            accesses: &mut self.accesses,
            span,
            tuned: None,
            faults: &mut self.faults,
            fault_sticky: None,
            put_journal: Vec::new(),
            modes,
            gathered: Vec::new(),
        };
        // Building the cache is allocation only (zero cycles); the
        // closure, and the final dirty-line flush, run on the
        // accelerator clock. Builder-declared gather plans execute
        // first, on the accelerator clock, so their packed buffers are
        // ready when the kernel enters (see AccelCtx::gathered).
        let outcome = match ctx.install_tuned(&choice) {
            Err(e) => Err(e),
            Ok(()) => match gathers.iter().try_for_each(|plan| {
                let local = ctx.gather(plan)?;
                ctx.gathered.push(local);
                Ok(())
            }) {
                Err(e) => Err(e),
                Ok(()) => {
                    let result = f(&mut ctx);
                    match ctx.flush_tuned() {
                        Err(e) => Err(e),
                        Ok(()) => Ok((result, ctx.now)),
                    }
                }
            },
        };
        let (result, end) = match outcome {
            Ok(v) => v,
            Err(e) => {
                slot.ls.restore_alloc(mark);
                return Err(e);
            }
        };
        if self.events.is_enabled() {
            self.events.record(
                end,
                EventKind::LsHighWater {
                    accel,
                    bytes: slot.ls.alloc_high_water(),
                },
            );
        }
        slot.ls.restore_alloc(mark);
        slot.busy_until = end;
        slot.busy_cycles += end - start;
        self.stats.accel_busy_cycles += end - start;
        self.events.record(end, EventKind::OffloadEnd { accel });
        Ok(OffloadHandle {
            result,
            accel,
            start,
            end,
        })
    }

    /// Joins an offload thread: the host blocks until the accelerator
    /// finished, then resumes with the closure's result.
    pub fn join<R>(&mut self, handle: OffloadHandle<R>) -> R {
        self.host_now = self.host_now.max(handle.end) + self.config.cost.join_overhead;
        self.stats.joins += 1;
        self.events.record(
            self.host_now,
            EventKind::Join {
                accel: handle.accel,
            },
        );
        handle.result
    }

    /// Runs `f` *on the host*, as the degraded form of an offload tile
    /// whose accelerator has failed it — the recovery layer's last
    /// resort (see `offload_rt::sched`).
    ///
    /// The closure runs against accelerator `accel`'s context (its
    /// local store and DMA engine still work as scratch even when the
    /// core itself is dead) starting at the *host's* current cycle,
    /// with fault injection suppressed — the host does not share the
    /// accelerators' failure modes. The honest penalty is charged by
    /// scaling the elapsed accelerator-style cycles by
    /// [`CostModel::host_fallback_factor`] on the host clock; the
    /// accelerator's busy accounting is untouched because it did no
    /// work.
    ///
    /// The fallback honours the same access-mode declarations (`modes`)
    /// the failed offload ran under: replaying a tile on the host must
    /// not be allowed to store where the accelerator could not.
    ///
    /// # Errors
    ///
    /// Fails if `accel` does not exist.
    pub fn run_host_fallback<R>(
        &mut self,
        accel: u16,
        name: &'static str,
        modes: ModeSet,
        f: impl FnOnce(&mut AccelCtx<'_>) -> R,
    ) -> Result<R, SimError> {
        self.check_accel(accel)?;
        let start = self.host_now;
        self.events.record(
            start,
            EventKind::SpanStart {
                core: CoreId::Host,
                name,
            },
        );
        self.faults.push_suppress();
        let slot = &mut self.accels[usize::from(accel)];
        let mark = slot.ls.save_alloc();
        let mut ctx = AccelCtx {
            now: start,
            cost: self.config.cost,
            accel_index: accel,
            main: &mut self.main,
            ls: &mut slot.ls,
            dma: &mut slot.dma,
            staging: slot.staging,
            staging_size: self.config.staging_size,
            events: &mut self.events,
            stats: &mut self.stats,
            accesses: &mut self.accesses,
            // Fallbacks are not offload spans; keep them out of the
            // autotuner's per-span attribution.
            span: u32::MAX,
            tuned: None,
            faults: &mut self.faults,
            fault_sticky: None,
            put_journal: Vec::new(),
            modes,
            gathered: Vec::new(),
        };
        let result = f(&mut ctx);
        let elapsed = ctx.now - start;
        slot.ls.restore_alloc(mark);
        self.faults.pop_suppress();
        let penalty = elapsed.saturating_mul(self.config.cost.host_fallback_factor);
        self.host_now = start + penalty;
        self.stats.recovery_fallback_cycles += penalty;
        self.events.record(
            self.host_now,
            EventKind::SpanEnd {
                core: CoreId::Host,
                name,
            },
        );
        Ok(result)
    }

    /// The cycle at which accelerator `accel` finishes its last launched
    /// offload (0 if it never ran one). Schedulers use this to pick the
    /// least-loaded accelerator before committing a launch.
    ///
    /// # Errors
    ///
    /// Fails if `accel` does not exist.
    pub fn accel_free_at(&self, accel: u16) -> Result<u64, SimError> {
        self.check_accel(accel)?;
        Ok(self.accels[usize::from(accel)].busy_until)
    }

    // ---- scheduler bookkeeping --------------------------------------------
    //
    // Hooks for tile schedulers layered on top of the machine (see
    // `offload_rt::sched`). All of them are pure bookkeeping — they
    // update the always-on counters and, when the event log is enabled,
    // record structured scheduler events; no simulated cycles anywhere.

    /// Notes that a scheduler placed `tile` on accelerator `accel`'s
    /// work queue at cycle `at`. Zero simulated cost.
    pub fn sched_note_enqueue(&mut self, at: u64, accel: u16, tile: u32) {
        self.events
            .record(at, EventKind::SchedEnqueue { accel, tile });
    }

    /// Notes that accelerator `accel` ran `tile` over `[start, end]`;
    /// `stolen_from` names the queue the tile originally sat on when a
    /// work-stealing scheduler moved it. Zero simulated cost.
    pub fn sched_note_run(
        &mut self,
        start: u64,
        accel: u16,
        tile: u32,
        end: u64,
        stolen_from: Option<u16>,
    ) {
        self.stats.sched_tiles += 1;
        self.events.record(
            start,
            EventKind::SchedRun {
                accel,
                tile,
                end,
                stolen_from,
            },
        );
    }

    /// Notes that accelerator `accel` sat idle over `[from, until]`
    /// while the scheduled task was in flight. Zero simulated cost.
    pub fn sched_note_idle(&mut self, from: u64, accel: u16, until: u64) {
        self.stats.sched_idle_cycles += until.saturating_sub(from);
        self.events
            .record(from, EventKind::SchedIdle { accel, until });
    }

    /// Notes that a work-stealing scheduler moved `tile` from `victim`'s
    /// queue to `thief`'s at cycle `at`, charging the thief `cost`
    /// simulated cycles (the charge itself is applied by the scheduler,
    /// inside the stolen tile's offload). Zero simulated cost here.
    pub fn sched_note_steal(&mut self, at: u64, thief: u16, victim: u16, tile: u32, cost: u64) {
        self.stats.sched_steals += 1;
        self.stats.sched_steal_cycles += cost;
        self.events.record(
            at,
            EventKind::SchedSteal {
                thief,
                victim,
                tile,
                cost,
            },
        );
    }

    // ---- pipeline bookkeeping ---------------------------------------------
    //
    // Hooks for the streaming pipeline runtime (`offload_rt::pipeline`),
    // mirroring the scheduler hooks above: counters always, structured
    // events when the log is on; no simulated cycles anywhere.

    /// Notes that pipeline stage `stage` processed `chunk` on
    /// accelerator `accel` over `[start, end]`. Zero simulated cost.
    pub fn pipe_note_run(&mut self, start: u64, accel: u16, stage: u16, chunk: u32, end: u64) {
        self.stats.pipe_stage_runs += 1;
        self.events.record(
            start,
            EventKind::PipeRun {
                accel,
                stage,
                chunk,
                end,
            },
        );
    }

    /// Notes that `chunk` cleared the pipeline's final stage at cycle
    /// `at`. Zero simulated cost.
    pub fn pipe_note_chunk(&mut self, at: u64, chunk: u32) {
        let _ = (at, chunk);
        self.stats.pipe_chunks += 1;
    }

    // ---- recovery bookkeeping ---------------------------------------------
    //
    // Zero-simulated-cost hooks for the recovery layer (retry/backoff/
    // fallback in `offload_rt::sched`), mirroring the scheduler hooks
    // above: counters always, structured events when the log is on.

    /// Notes that the scheduler evicted dead accelerator `accel` at
    /// cycle `at`, redistributing `tiles_moved` queued tiles. Zero
    /// simulated cost.
    pub fn recovery_note_evict(&mut self, at: u64, accel: u16, tiles_moved: u32) {
        self.stats.recovery_evictions += 1;
        self.events.record(
            at,
            EventKind::RecoveryApplied {
                accel,
                recovery: RecoveryKind::Evict { tiles_moved },
            },
        );
    }

    /// Notes that `tile` was degraded to host execution after
    /// accelerator `accel` failed it, at cycle `at`. Zero simulated
    /// cost (the execution penalty is charged by
    /// [`Machine::run_host_fallback`]).
    pub fn recovery_note_fallback(&mut self, at: u64, accel: u16, tile: u32) {
        self.stats.recovery_fallbacks += 1;
        self.events.record(
            at,
            EventKind::RecoveryApplied {
                accel,
                recovery: RecoveryKind::HostFallback { tile },
            },
        );
    }

    // ---- inspection --------------------------------------------------------

    /// DMA statistics for one accelerator.
    ///
    /// # Errors
    ///
    /// Fails if `accel` does not exist.
    pub fn dma_stats(&self, accel: u16) -> Result<DmaStats, SimError> {
        self.check_accel(accel)?;
        Ok(self.accels[usize::from(accel)].dma.stats())
    }

    /// Drains DMA race reports from every accelerator.
    pub fn take_race_reports(&mut self) -> Vec<RaceReport> {
        let mut all = Vec::new();
        for accel in &mut self.accels {
            all.extend(accel.dma.take_race_reports());
        }
        all
    }

    /// Total races detected across all accelerators (including drained
    /// ones).
    pub fn races_detected(&self) -> u64 {
        self.accels
            .iter()
            .map(|a| a.dma.race_checker().detected())
            .sum()
    }

    /// Builds a set-associative software cache whose arena is allocated
    /// *permanently* in accelerator `accel`'s local store, surviving
    /// across offload blocks (call before the first offload).
    ///
    /// # Errors
    ///
    /// Fails if `accel` does not exist or its local store is full.
    pub fn new_cache_for(
        &mut self,
        accel: u16,
        config: softcache::CacheConfig,
    ) -> Result<softcache::SetAssociativeCache, SimError> {
        self.check_accel(accel)?;
        Ok(softcache::SetAssociativeCache::new(
            config,
            SpaceId::MAIN,
            &mut self.accels[usize::from(accel)].ls,
        )?)
    }

    /// Builds a streaming software cache persisting in accelerator
    /// `accel`'s local store.
    ///
    /// # Errors
    ///
    /// As for [`Machine::new_cache_for`].
    pub fn new_stream_cache_for(
        &mut self,
        accel: u16,
        config: softcache::CacheConfig,
    ) -> Result<softcache::StreamCache, SimError> {
        self.check_accel(accel)?;
        Ok(softcache::StreamCache::new(
            config,
            SpaceId::MAIN,
            &mut self.accels[usize::from(accel)].ls,
        )?)
    }

    /// Read-only view of an accelerator's local store (for tests).
    ///
    /// # Errors
    ///
    /// Fails if `accel` does not exist.
    pub fn local_store(&self, accel: u16) -> Result<&MemoryRegion, SimError> {
        self.check_accel(accel)?;
        Ok(&self.accels[usize::from(accel)].ls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(MachineConfig::small()).unwrap()
    }

    #[test]
    fn config_validation() {
        let bad = MachineConfig {
            accel_count: 0,
            ..MachineConfig::default()
        };
        assert!(matches!(Machine::new(bad), Err(SimError::BadConfig { .. })));
        let bad = MachineConfig {
            staging_size: 0,
            ..MachineConfig::default()
        };
        assert!(matches!(Machine::new(bad), Err(SimError::BadConfig { .. })));
    }

    #[test]
    fn host_accesses_charge_time() {
        let mut m = machine();
        let a = m.alloc_main_pod::<u64>().unwrap();
        let t0 = m.host_now();
        m.host_write_pod(a, &5u64).unwrap();
        let t1 = m.host_now();
        assert_eq!(t1 - t0, m.cost().host_mem_access);
        assert_eq!(m.host_read_pod::<u64>(a).unwrap(), 5);
    }

    #[test]
    fn host_slice_access_charges_per_cache_line() {
        let mut m = machine();
        let a = m.alloc_main_slice::<u32>(64).unwrap(); // 256 bytes = 4 lines
        let t0 = m.host_now();
        m.host_read_slice::<u32>(a, 64).unwrap();
        assert_eq!(m.host_now() - t0, 4 * m.cost().host_mem_access);
    }

    #[test]
    fn setup_access_is_free() {
        let mut m = machine();
        let a = m.alloc_main_pod::<u32>().unwrap();
        m.main_mut().write_pod(a, &9u32).unwrap();
        assert_eq!(m.host_now(), 0);
        assert_eq!(m.main().read_pod::<u32>(a).unwrap(), 9);
    }

    #[test]
    fn offload_runs_in_parallel_with_host() {
        let mut m = machine();
        let handle = m
            .offload(0)
            .spawn(|ctx| {
                ctx.compute(10_000);
            })
            .unwrap();
        // Host does 4k cycles of its own work; the accel took 10k.
        m.host_compute(4_000);
        let host_before_join = m.host_now();
        m.join(handle);
        // Join waits for the accelerator, not host+accel serially.
        assert!(m.host_now() >= 10_000);
        assert!(m.host_now() < host_before_join + 10_000);
    }

    #[test]
    fn join_is_free_when_accel_already_finished() {
        let mut m = machine();
        let handle = m.offload(0).spawn(|ctx| ctx.compute(100)).unwrap();
        m.host_compute(50_000);
        let before = m.host_now();
        m.join(handle);
        assert_eq!(m.host_now(), before + m.cost().join_overhead);
    }

    #[test]
    fn sequential_offloads_to_same_accel_queue_up() {
        let mut m = machine();
        let h1 = m.offload(0).spawn(|ctx| ctx.compute(5_000)).unwrap();
        let h2 = m.offload(0).spawn(|ctx| ctx.compute(5_000)).unwrap();
        assert!(h2.start() >= h1.end(), "same accelerator serialises");
        m.join(h1);
        m.join(h2);
    }

    #[test]
    fn offloads_to_different_accels_overlap() {
        let mut m = Machine::new(MachineConfig::default()).unwrap();
        let h1 = m.offload(0).spawn(|ctx| ctx.compute(5_000)).unwrap();
        let h2 = m.offload(1).spawn(|ctx| ctx.compute(5_000)).unwrap();
        assert!(h2.start() < h1.end(), "different accelerators overlap");
        m.join(h1);
        m.join(h2);
        assert!(
            m.host_now() < 12_000,
            "parallel, not serial: {}",
            m.host_now()
        );
    }

    #[test]
    fn outer_access_round_trips_through_dma() {
        let mut m = machine();
        let a = m.alloc_main_pod::<u32>().unwrap();
        m.main_mut().write_pod(a, &123u32).unwrap();
        let result = m
            .offload(0)
            .run(|ctx| -> Result<u32, SimError> {
                let start = ctx.now();
                let v: u32 = ctx.outer_read_pod(a)?;
                let cost = ctx.now() - start;
                // A full DMA round trip: far more than a local access.
                assert!(cost > ctx.cost().dma.latency);
                ctx.outer_write_pod(a, &(v * 2))?;
                Ok(v)
            })
            .unwrap()
            .unwrap();
        assert_eq!(result, 123);
        assert_eq!(m.main().read_pod::<u32>(a).unwrap(), 246);
        let stats = m.dma_stats(0).unwrap();
        assert_eq!(stats.gets, 1);
        assert_eq!(stats.puts, 1);
    }

    #[test]
    fn local_allocations_are_scoped_to_the_offload() {
        let mut m = machine();
        let first = m
            .offload(0)
            .run(|ctx| ctx.alloc_local(1024, 16).unwrap())
            .unwrap();
        let second = m
            .offload(0)
            .run(|ctx| ctx.alloc_local(1024, 16).unwrap())
            .unwrap();
        assert_eq!(first, second, "local data died with the first offload");
    }

    #[test]
    fn local_store_exhaustion_surfaces() {
        let mut m = machine();
        let result = m
            .offload(0)
            .run(|ctx| ctx.alloc_local(512 * 1024, 16))
            .unwrap();
        assert!(matches!(result, Err(SimError::Memory(_))));
    }

    #[test]
    fn explicit_dma_with_tags_works_in_ctx() {
        let mut m = machine();
        let remote = m.alloc_main_slice::<u32>(16).unwrap();
        let values: Vec<u32> = (0..16).collect();
        m.main_mut().write_pod_slice(remote, &values).unwrap();
        let out = m
            .offload(0)
            .run(|ctx| -> Result<Vec<u32>, SimError> {
                let local = ctx.alloc_local_slice::<u32>(16)?;
                let tag = dma::Tag::new(0).unwrap();
                ctx.dma_get(local, remote, 64, tag)?;
                ctx.dma_wait_tag(tag);
                ctx.local_read_slice::<u32>(local, 16)
            })
            .unwrap()
            .unwrap();
        assert_eq!(out, values);
        assert_eq!(m.races_detected(), 0);
    }

    #[test]
    fn missing_wait_is_detected_as_a_race() {
        let mut m = machine();
        let remote = m.alloc_main_slice::<u32>(16).unwrap();
        m.offload(0)
            .run(|ctx| -> Result<(), SimError> {
                let local = ctx.alloc_local_slice::<u32>(16)?;
                let tag = dma::Tag::new(0).unwrap();
                ctx.dma_get(local, remote, 64, tag)?;
                // BUG: read without waiting.
                let _: u32 = ctx.local_read_pod(local)?;
                ctx.dma_wait_tag(tag);
                Ok(())
            })
            .unwrap()
            .unwrap();
        assert_eq!(m.races_detected(), 1);
        let reports = m.take_race_reports();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].to_string().contains("missing dma_wait"));
    }

    #[test]
    fn cached_access_through_ctx() {
        let mut m = machine();
        let a = m.alloc_main_slice::<u32>(64).unwrap();
        m.main_mut()
            .write_pod_slice(a, &(0..64).collect::<Vec<u32>>())
            .unwrap();
        let sum = m
            .offload(0)
            .run(|ctx| -> Result<(u32, u64, u64), SimError> {
                // Allocate the cache arena inside the offload scope.
                let mut cache = ctx.new_cache(softcache::CacheConfig::direct_mapped_4k())?;
                let t0 = ctx.now();
                let mut sum = 0u32;
                for i in 0..64u32 {
                    sum += ctx.cached_read_pod::<u32, _>(&mut cache, a.element(i, 4)?)?;
                }
                let cached_cycles = ctx.now() - t0;
                let t1 = ctx.now();
                let mut sum2 = 0u32;
                for i in 0..64u32 {
                    sum2 += ctx.outer_read_pod::<u32>(a.element(i, 4)?)?;
                }
                let naive_cycles = ctx.now() - t1;
                assert_eq!(sum, sum2);
                Ok((sum, cached_cycles, naive_cycles))
            })
            .unwrap()
            .unwrap();
        let (total, cached, naive) = sum;
        assert_eq!(total, (0..64).sum::<u32>());
        assert!(
            cached * 4 < naive,
            "cache should be >4x faster: {cached} vs {naive}"
        );
    }

    #[test]
    fn no_such_accel_is_reported() {
        let mut m = machine();
        assert!(matches!(
            m.offload(5).spawn(|_| ()),
            Err(SimError::NoSuchAccel { index: 5, count: 1 })
        ));
        assert!(m.dma_stats(3).is_err());
    }

    #[test]
    fn events_record_the_offload_lifecycle() {
        let mut m = machine();
        m.events_mut().set_enabled(true);
        let h = m.offload(0).spawn(|ctx| ctx.compute(100)).unwrap();
        m.join(h);
        let kinds: Vec<_> = m.events().events().iter().map(|e| &e.kind).collect();
        assert!(matches!(
            kinds[0],
            EventKind::OffloadStart {
                accel: 0,
                name: "offload"
            }
        ));
        // The end of the offload reports the local-store high-water mark
        // before the lifecycle events resume.
        assert!(matches!(kinds[1], EventKind::LsHighWater { accel: 0, .. }));
        assert!(matches!(kinds[2], EventKind::OffloadEnd { accel: 0 }));
        assert!(matches!(kinds[3], EventKind::Join { accel: 0 }));
        assert_eq!(m.stats().offloads, 1);
        assert_eq!(m.stats().joins, 1);
        assert_eq!(m.stats().accel_busy_cycles, 100);
    }

    #[test]
    fn labeled_offloads_carry_their_name() {
        let mut m = machine();
        m.events_mut().set_enabled(true);
        let h = m
            .offload(0)
            .label("calculateStrategy")
            .spawn(|ctx| ctx.compute(10))
            .unwrap();
        m.join(h);
        assert!(m.events().events().iter().any(|e| matches!(
            e.kind,
            EventKind::OffloadStart {
                accel: 0,
                name: "calculateStrategy"
            }
        )));
    }

    #[test]
    fn outer_byte_access_chunks_through_the_staging_buffer() {
        // 10 KiB > the 4 KiB staging buffer: the transfer splits into
        // three synchronous round trips, each paying full latency.
        let mut m = machine();
        let remote = m.alloc_main(10 * 1024, 16).unwrap();
        let pattern: Vec<u8> = (0..10 * 1024).map(|i| (i % 251) as u8).collect();
        m.main_mut().write_bytes(remote, &pattern).unwrap();
        let (data, elapsed) = m
            .offload(0)
            .run(|ctx| -> Result<(Vec<u8>, u64), SimError> {
                let t0 = ctx.now();
                let mut buf = vec![0u8; 10 * 1024];
                ctx.outer_read_bytes(remote, &mut buf)?;
                Ok((buf, ctx.now() - t0))
            })
            .unwrap()
            .unwrap();
        assert_eq!(data, pattern);
        let latency = m.cost().dma.latency;
        assert!(
            elapsed >= 3 * latency,
            "three chunked round trips pay 3x latency: {elapsed}"
        );
        assert_eq!(m.dma_stats(0).unwrap().gets, 3);
    }

    #[test]
    fn outer_byte_writes_round_trip() {
        let mut m = machine();
        let remote = m.alloc_main(256, 16).unwrap();
        m.offload(0)
            .run(|ctx| ctx.outer_write_bytes(remote, &[7u8; 100]))
            .unwrap()
            .unwrap();
        assert_eq!(m.main().read_bytes(remote, 100).unwrap(), &[7u8; 100][..]);
    }

    #[test]
    fn peek_and_poke_are_cost_free() {
        let mut m = machine();
        m.offload(0)
            .run(|ctx| -> Result<(), SimError> {
                let local = ctx.alloc_local(64, 16)?;
                let before = ctx.now();
                ctx.poke_local(local, &[1, 2, 3])?;
                let mut out = [0u8; 3];
                ctx.peek_local(local, &mut out)?;
                assert_eq!(out, [1, 2, 3]);
                assert_eq!(ctx.now(), before, "bookkeeping access charges nothing");
                Ok(())
            })
            .unwrap()
            .unwrap();
        assert_eq!(
            m.races_detected(),
            0,
            "bookkeeping access is not race-tracked"
        );
    }

    #[test]
    fn local_byte_access_charges_quadword_granularity() {
        let mut m = machine();
        m.offload(0)
            .run(|ctx| -> Result<(), SimError> {
                let local = ctx.alloc_local(256, 16)?;
                let ls = ctx.cost().ls_access;
                let t0 = ctx.now();
                ctx.local_write_bytes(local, &[0u8; 16])?;
                assert_eq!(ctx.now() - t0, ls, "one quadword");
                let t1 = ctx.now();
                ctx.local_write_bytes(local, &[0u8; 64])?;
                assert_eq!(ctx.now() - t1, 4 * ls, "four quadwords");
                Ok(())
            })
            .unwrap()
            .unwrap();
    }

    #[test]
    fn host_byte_helpers_charge_per_cache_line() {
        let mut m = machine();
        let addr = m.alloc_main(256, 16).unwrap();
        let t0 = m.host_now();
        m.host_write_bytes(addr, &[1u8; 130]).unwrap();
        assert_eq!(
            m.host_now() - t0,
            3 * m.cost().host_mem_access,
            "130 bytes touch three 64-byte lines"
        );
        let mut out = [0u8; 130];
        m.host_read_bytes(addr, &mut out).unwrap();
        assert_eq!(out, [1u8; 130]);
    }

    #[test]
    fn machine_level_caches_persist_across_offloads() {
        use softcache::SoftwareCache;
        let mut m = machine();
        let a = m.alloc_main_slice::<u32>(16).unwrap();
        m.main_mut().write_pod(a, &9u32).unwrap();
        let mut cache = m
            .new_cache_for(0, softcache::CacheConfig::direct_mapped_4k())
            .unwrap();
        // First offload misses; the second hits the *same* cache because
        // its arena was allocated before any offload scope.
        for _ in 0..2 {
            let v = m
                .offload(0)
                .run(|ctx| ctx.cached_read_pod::<u32, _>(&mut cache, a))
                .unwrap()
                .unwrap();
            assert_eq!(v, 9);
        }
        assert_eq!(
            cache.stats().hits,
            1,
            "the second offload hit the persistent cache"
        );
        assert_eq!(cache.stats().misses, 1);

        let mut stream = m
            .new_stream_cache_for(0, softcache::CacheConfig::new(256, 1, 1))
            .unwrap();
        let v = m
            .offload(0)
            .run(|ctx| ctx.cached_read_pod::<u32, _>(&mut stream, a))
            .unwrap()
            .unwrap();
        assert_eq!(v, 9);
    }

    #[test]
    fn builder_cache_routes_tuned_accesses_and_flushes_on_exit() {
        let mut m = machine();
        let a = m.alloc_main_slice::<u32>(64).unwrap();
        m.main_mut()
            .write_pod_slice(a, &(0..64).collect::<Vec<u32>>())
            .unwrap();
        // Naive builder: tuned accessors fall back to outer accesses.
        let (naive_sum, naive_cycles) = m
            .offload(0)
            .run(|ctx| -> Result<(u32, u64), SimError> {
                assert!(!ctx.has_tuned_cache());
                let t0 = ctx.now();
                let mut sum = 0u32;
                for i in 0..64u32 {
                    sum += ctx.tuned_read_pod::<u32>(a.element(i, 4)?)?;
                }
                Ok((sum, ctx.now() - t0))
            })
            .unwrap()
            .unwrap();
        // Cached builder: same loop through the tuned cache, far cheaper.
        let choice = CacheChoice::SetAssoc(softcache::CacheConfig::direct_mapped_4k());
        let (cached_sum, cached_cycles) = m
            .offload(0)
            .cache(choice)
            .run(|ctx| -> Result<(u32, u64), SimError> {
                assert!(ctx.has_tuned_cache());
                let t0 = ctx.now();
                let mut sum = 0u32;
                for i in 0..64u32 {
                    sum += ctx.tuned_read_pod::<u32>(a.element(i, 4)?)?;
                }
                ctx.tuned_write_pod(a.element(0, 4)?, &777u32)?;
                Ok((sum, ctx.now() - t0))
            })
            .unwrap()
            .unwrap();
        assert_eq!(naive_sum, cached_sum);
        assert!(
            cached_cycles * 4 < naive_cycles,
            "tuned cache should be >4x faster: {cached_cycles} vs {naive_cycles}"
        );
        // The write-back flush ran when the block ended.
        assert_eq!(m.main().read_pod::<u32>(a).unwrap(), 777);
        assert!(m.stats().cache_hits > 0);
    }

    #[test]
    fn builder_with_naive_cache_matches_the_plain_builder_bit_identically() {
        let run = |cache: bool| -> u64 {
            let mut m = machine();
            let a = m.alloc_main_pod::<u32>().unwrap();
            m.main_mut().write_pod(a, &3u32).unwrap();
            let b = m.offload(0);
            let b = if cache {
                b.cache(CacheChoice::Naive)
            } else {
                b
            };
            b.run(|ctx| -> Result<(), SimError> {
                let v: u32 = ctx.outer_read_pod(a)?;
                ctx.compute(u64::from(v));
                Ok(())
            })
            .unwrap()
            .unwrap();
            m.host_now()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn quiet_fault_plan_is_bit_identical_to_no_plan() {
        use crate::fault::FaultPlan;
        let run = |plan: Option<FaultPlan>| {
            let mut m = machine();
            if let Some(p) = plan {
                m.install_fault_plan(p);
            }
            let a = m.alloc_main_slice::<u32>(64).unwrap();
            m.main_mut().write_pod_slice(a, &vec![7u32; 64]).unwrap();
            m.offload(0)
                .run(|ctx| -> Result<(), SimError> {
                    let local = ctx.alloc_local(256, 16)?;
                    let tag = dma::Tag::new(5).unwrap();
                    ctx.dma_get(local, a, 256, tag)?;
                    ctx.dma_wait_tag(tag);
                    let v: u32 = ctx.local_read_pod(local)?;
                    ctx.compute(u64::from(v));
                    Ok(())
                })
                .unwrap()
                .unwrap();
            m.host_now()
        };
        // All-zero rates short-circuit every roll, so an armed-but-quiet
        // plane costs nothing and consumes no randomness.
        assert_eq!(run(None), run(Some(FaultPlan::new(12345))));
    }

    #[test]
    fn accel_death_fails_launches_and_is_sticky() {
        use crate::fault::FaultPlan;
        let mut m = machine();
        m.install_fault_plan(FaultPlan::new(1).with_accel_death(1.0));
        let err = m
            .offload(0)
            .run(|ctx| ctx.compute(1))
            .expect_err("certain death must fail the launch");
        assert_eq!(err, SimError::Fault(FaultError::AccelDead { accel: 0 }));
        assert!(m.accel_is_dead(0).unwrap());
        let t0 = m.host_now();
        let err = m.offload(0).run(|ctx| ctx.compute(1)).unwrap_err();
        assert!(matches!(err, SimError::Fault(FaultError::AccelDead { .. })));
        assert_eq!(m.host_now(), t0, "known-dead launches are free");
        // Clearing the plan revives the machine.
        m.clear_fault_plan();
        m.offload(0).run(|ctx| ctx.compute(1)).unwrap();
    }

    #[test]
    fn accel_stall_delays_the_block_start() {
        use crate::fault::FaultPlan;
        let stalled = {
            let mut m = machine();
            m.install_fault_plan(
                FaultPlan::new(2)
                    .with_accel_stall(1.0)
                    .with_stall_cycles(9_000),
            );
            let h = m.offload(0).spawn(|ctx| ctx.compute(100)).unwrap();
            h.start()
        };
        let clean = {
            let mut m = machine();
            let h = m.offload(0).spawn(|ctx| ctx.compute(100)).unwrap();
            h.start()
        };
        assert_eq!(stalled, clean + 9_000);
    }

    #[test]
    fn host_fallback_charges_the_penalty_factor() {
        let mut m = machine();
        let a = m.alloc_main_pod::<u32>().unwrap();
        m.main_mut().write_pod(a, &20u32).unwrap();
        let t0 = m.host_now();
        let v = m
            .run_host_fallback(
                0,
                "tile-fallback",
                ModeSet::new(),
                |ctx| -> Result<u32, SimError> {
                    let v: u32 = ctx.outer_read_pod(a)?;
                    ctx.compute(1_000);
                    ctx.outer_write_pod(a, &(v + 1))?;
                    Ok(v)
                },
            )
            .unwrap()
            .unwrap();
        assert_eq!(v, 20);
        assert_eq!(m.main().read_pod::<u32>(a).unwrap(), 21);
        let elapsed = m.host_now() - t0;
        assert!(
            elapsed >= 3 * 1_000,
            "fallback must charge at least factor x compute: {elapsed}"
        );
        assert_eq!(elapsed % m.cost().host_fallback_factor, 0);
        assert_eq!(m.stats().recovery_fallback_cycles, elapsed);
        // The accelerator did no work.
        assert_eq!(m.accel_busy_cycles(0).unwrap(), 0);
    }

    #[test]
    fn recovery_notes_update_stats_and_record_events() {
        let mut m = machine();
        m.events_mut().set_enabled(true);
        m.recovery_note_evict(100, 0, 3);
        m.recovery_note_fallback(200, 0, 7);
        assert_eq!(m.stats().recovery_evictions, 1);
        assert_eq!(m.stats().recovery_fallbacks, 1);
        let text: Vec<String> = m.events().events().iter().map(|e| e.to_string()).collect();
        assert!(text.iter().any(|s| s.contains("evict")), "{text:?}");
        assert!(
            text.iter().any(|s| s.contains("host_fallback tile 7")),
            "{text:?}"
        );
    }

    #[test]
    fn accel_free_at_tracks_queue_depth() {
        let mut m = machine();
        assert_eq!(m.accel_free_at(0).unwrap(), 0);
        let h = m.offload(0).spawn(|ctx| ctx.compute(5_000)).unwrap();
        assert_eq!(m.accel_free_at(0).unwrap(), h.end());
        m.join(h);
        assert!(m.accel_free_at(9).is_err());
    }

    #[test]
    fn sched_notes_update_stats_and_record_events() {
        let mut m = machine();
        m.events_mut().set_enabled(true);
        m.sched_note_enqueue(10, 0, 7);
        m.sched_note_run(100, 0, 7, 400, Some(1));
        m.sched_note_idle(400, 0, 450);
        m.sched_note_steal(90, 0, 1, 7, 250);
        let s = m.stats();
        assert_eq!(s.sched_tiles, 1);
        assert_eq!(s.sched_steals, 1);
        assert_eq!(s.sched_steal_cycles, 250);
        assert_eq!(s.sched_idle_cycles, 50);
        let kinds: Vec<_> = m.events().events().iter().map(|e| &e.kind).collect();
        assert!(matches!(
            kinds[0],
            EventKind::SchedEnqueue { accel: 0, tile: 7 }
        ));
        assert!(matches!(
            kinds[1],
            EventKind::SchedRun {
                accel: 0,
                tile: 7,
                end: 400,
                stolen_from: Some(1)
            }
        ));
        assert!(matches!(
            kinds[2],
            EventKind::SchedIdle {
                accel: 0,
                until: 450
            }
        ));
        assert!(matches!(
            kinds[3],
            EventKind::SchedSteal {
                thief: 0,
                victim: 1,
                tile: 7,
                cost: 250
            }
        ));
        // Bookkeeping is free: no clock moved.
        assert_eq!(m.host_now(), 0);
    }

    #[test]
    fn value_too_large_for_staging() {
        let mut m = machine();
        let a = m.alloc_main(8192, 16).unwrap();
        let result = m
            .offload(0)
            .run(|ctx| ctx.outer_read_pod::<[u8; 8192]>(a))
            .unwrap();
        assert!(matches!(result, Err(SimError::ValueTooLarge { .. })));
    }

    /// A representative workload that exercises every piece of state a
    /// reset must clear: host accesses, an offload with DMA and events,
    /// faults, and the access trace.
    fn dirty_the_machine(m: &mut Machine) {
        m.events_mut().set_enabled(true);
        m.access_trace_mut().set_enabled(true);
        m.install_fault_plan(FaultPlan {
            accel_stall: 0.5,
            stall_cycles: 40,
            ..FaultPlan::new(7)
        });
        let a = m.alloc_main_slice::<u32>(64).unwrap();
        m.host_write_slice(a, &[3u32; 64]).unwrap();
        let _ = m.offload(0).label("dirty").run(|ctx| {
            ctx.compute(1_000);
            let local = ctx.alloc_local(256, memspace::DMA_ALIGN)?;
            ctx.dma_get(local, a, 256, dma::Tag::new(0).unwrap())?;
            ctx.dma_wait_all();
            Ok::<(), SimError>(())
        });
        m.host_compute(123);
    }

    fn run_seeded_world(m: &mut Machine, seed: u64) {
        m.reset_for_seed(seed);
        let a = m.alloc_main_slice::<u64>(32).unwrap();
        let fill: Vec<u64> = (0..32)
            .map(|i| seed.wrapping_mul(31).wrapping_add(i))
            .collect();
        m.host_write_slice(a, &fill).unwrap();
        let sum = m
            .offload(0)
            .run(|ctx| {
                ctx.compute(seed % 997);
                let local = ctx.alloc_local(256, memspace::DMA_ALIGN)?;
                ctx.dma_get(local, a, 256, dma::Tag::new(1).unwrap())?;
                ctx.dma_wait_all();
                let mut sum = 0u64;
                for i in 0..32u32 {
                    sum = sum
                        .wrapping_add(ctx.local_read_pod::<u64>(local.offset_by(i * 8).unwrap())?);
                }
                Ok::<u64, SimError>(sum)
            })
            .unwrap()
            .unwrap();
        m.host_write_pod(a, &sum).unwrap();
    }

    #[test]
    fn reset_machine_is_bit_identical_to_fresh() {
        let config = MachineConfig::small();
        let mut reused = Machine::new(config).unwrap();
        dirty_the_machine(&mut reused);
        run_seeded_world(&mut reused, 42);

        let mut fresh = Machine::new(config).unwrap();
        run_seeded_world(&mut fresh, 42);

        assert_eq!(reused.world_hash(), fresh.world_hash());
        assert_eq!(reused.stats(), fresh.stats());
        assert_eq!(reused.host_now(), fresh.host_now());
        assert_eq!(reused.world_seed(), fresh.world_seed());
        assert_eq!(
            reused.accel_busy_cycles(0).unwrap(),
            fresh.accel_busy_cycles(0).unwrap()
        );
        assert_eq!(reused.dma_stats(0).unwrap(), fresh.dma_stats(0).unwrap());
        assert_eq!(
            reused.ls_high_water(0).unwrap(),
            fresh.ls_high_water(0).unwrap()
        );
        assert!(reused.fault_plan().is_none());
        assert!(!reused.events().is_enabled());
        assert!(!reused.access_trace().is_enabled());
        assert_eq!(reused.events().len(), fresh.events().len());
    }

    #[test]
    fn reset_for_seed_clears_all_observable_state() {
        let mut m = machine();
        dirty_the_machine(&mut m);
        m.reset_for_seed(9);
        let pristine = Machine::new(MachineConfig::small()).unwrap();
        assert_eq!(m.host_now(), 0);
        assert_eq!(m.stats(), pristine.stats());
        assert_eq!(m.world_seed(), 9);
        assert_eq!(m.main().bytes_free(), pristine.main().bytes_free());
        assert_eq!(
            m.ls_high_water(0).unwrap(),
            pristine.ls_high_water(0).unwrap()
        );
        assert_eq!(m.accel_busy_cycles(0).unwrap(), 0);
        assert!(m.fault_plan().is_none());
        assert_eq!(m.events().len(), 0);
    }

    #[test]
    fn world_hash_tracks_observable_state() {
        let mut a = machine();
        let mut b = machine();
        run_seeded_world(&mut a, 5);
        run_seeded_world(&mut b, 5);
        assert_eq!(a.world_hash(), b.world_hash());
        let mut c = machine();
        run_seeded_world(&mut c, 6);
        assert_ne!(a.world_hash(), c.world_hash());
        // Host-visible memory writes change the digest even when the
        // clocks agree.
        let before = a.world_hash();
        let addr = Addr::new(SpaceId::MAIN, memspace::DMA_ALIGN);
        a.main_mut().write_pod(addr, &0xdead_beefu32).unwrap();
        assert_ne!(a.world_hash(), before);
    }

    #[test]
    fn machine_config_equality() {
        assert_eq!(MachineConfig::small(), MachineConfig::small());
        assert_ne!(MachineConfig::small(), MachineConfig::default());
    }

    // ---- gather ----------------------------------------------------------

    #[test]
    fn gather_packs_elements_in_index_order() {
        let mut m = machine();
        let a = m.alloc_main_slice::<u32>(64).unwrap();
        let values: Vec<u32> = (0..64).map(|i| i * 100).collect();
        m.main_mut().write_pod_slice(a, &values).unwrap();
        let out = m
            .offload(0)
            .run(|ctx| -> Result<Vec<u32>, SimError> {
                let plan = crate::GatherPlan::new(a, 4, vec![9, 3, 4, 5, 60]);
                let local = ctx.gather(&plan)?;
                ctx.local_read_slice::<u32>(local, 5)
            })
            .unwrap()
            .unwrap();
        assert_eq!(out, vec![900, 300, 400, 500, 6000]);
        let s = m.stats();
        assert_eq!(s.gathers, 1);
        assert_eq!(s.gather_elems, 5);
        // 9 | 3,4,5 | 60 coalesces to three descriptors.
        assert_eq!(s.gather_descriptors, 3);
        assert_eq!(s.gather_bytes, 20);
        assert_eq!(m.dma_stats(0).unwrap().gets, 3);
    }

    #[test]
    fn gather_beats_per_element_outer_reads() {
        let run_gather = |gather: bool| {
            let mut m = machine();
            let a = m.alloc_main_slice::<u32>(256).unwrap();
            m.main_mut().write_pod_slice(a, &vec![1u32; 256]).unwrap();
            let indices: Vec<u32> = (0..128).map(|i| (i * 37) % 256).collect();
            m.offload(0)
                .run(|ctx| -> Result<u64, SimError> {
                    let t0 = ctx.now();
                    if gather {
                        let plan = crate::GatherPlan::new(a, 4, indices.clone());
                        let local = ctx.gather(&plan)?;
                        let _ = ctx.local_read_slice::<u32>(local, 128)?;
                    } else {
                        for &i in &indices {
                            let _: u32 = ctx.outer_read_pod(a.element(i, 4)?)?;
                        }
                    }
                    Ok(ctx.now() - t0)
                })
                .unwrap()
                .unwrap()
        };
        let naive = run_gather(false);
        let gathered = run_gather(true);
        assert!(
            gathered * 2 <= naive,
            "batched gather must at least halve the naive cost: {gathered} vs {naive}"
        );
    }

    #[test]
    fn builder_gather_hands_packed_buffer_to_the_kernel() {
        let mut m = machine();
        let a = m.alloc_main_slice::<u32>(32).unwrap();
        let values: Vec<u32> = (0..32).map(|i| i + 1).collect();
        m.main_mut().write_pod_slice(a, &values).unwrap();
        let sum = m
            .offload(0)
            .label("declared-gather")
            .gather(a, 4, vec![0, 31, 2])
            .run(|ctx| -> Result<u32, SimError> {
                let local = ctx.gathered(0);
                let v = ctx.local_read_slice::<u32>(local, 3)?;
                Ok(v.iter().sum())
            })
            .unwrap()
            .unwrap();
        assert_eq!(sum, 1 + 32 + 3);
        assert_eq!(m.stats().gathers, 1);
    }

    #[test]
    fn builder_gather_declares_reads_so_stray_stores_fail() {
        let mut m = machine();
        let a = m.alloc_main_slice::<u32>(16).unwrap();
        let b = m.alloc_main_pod::<u32>().unwrap();
        let err = m
            .offload(0)
            .gather(a, 4, vec![0, 1])
            .run(|ctx| ctx.outer_write_pod(b, &7u32))
            .unwrap()
            .unwrap_err();
        assert!(
            matches!(err, SimError::UndeclaredWrite { .. }),
            "a declared gather flips the offload into the strict mode contract: {err:?}"
        );
    }

    #[test]
    fn gather_outside_declared_ranges_is_rejected_before_any_byte_moves() {
        let mut m = machine();
        let a = m.alloc_main_slice::<u32>(16).unwrap();
        let b = m.alloc_main_slice::<u32>(16).unwrap();
        let (err, cycles, gets) = m
            .offload(0)
            .reads(a, 64)
            .run(|ctx| {
                let t0 = ctx.now();
                let plan = crate::GatherPlan::new(b, 4, vec![0, 1]);
                let err = ctx.gather(&plan).unwrap_err();
                (err, ctx.now() - t0, ctx.stats.dma_gets)
            })
            .unwrap();
        assert!(matches!(err, SimError::UndeclaredRead { .. }), "{err:?}");
        assert_eq!(cycles, 0, "rejected before any cycle was charged");
        assert_eq!(gets, 0, "rejected before any transfer was issued");
    }

    #[test]
    fn faulted_gather_rolls_back_the_whole_batch_bit_identically() {
        use crate::fault::FaultPlan;
        // Seeded property sweep: under a corrupting fault plan, a kernel
        // that retries its gather until the whole batch lands must
        // observe exactly the bytes a fault-free run observes, and the
        // local store must not leak across attempts. The rates are kept
        // low enough that a fully clean batch stays likely per attempt
        // (the batch has ~12 descriptors; at 7% per transfer a retry
        // loop converges in a handful of rounds).
        let clean = gather_retry_run(None);
        for seed in 0..32u64 {
            let faulty = gather_retry_run(Some(
                FaultPlan::new(seed)
                    .with_dma_corrupt(0.05)
                    .with_dma_drop(0.02),
            ));
            assert_eq!(
                clean.0, faulty.0,
                "seed {seed}: recovered gather must be bit-identical"
            );
            assert_eq!(
                clean.1, faulty.1,
                "seed {seed}: retries must reuse the same local address"
            );
        }
    }

    /// One machine run of the retry-until-clean gather kernel: returns
    /// the gathered bytes and the local address of the final attempt.
    fn gather_retry_run(plan: Option<crate::fault::FaultPlan>) -> (Vec<u32>, Addr) {
        let mut m = machine();
        if let Some(p) = plan {
            m.install_fault_plan(p);
        }
        let a = m.alloc_main_slice::<u32>(512).unwrap();
        let values: Vec<u32> = (0..512).map(|i| i ^ 0xC0FFEE).collect();
        m.main_mut().write_pod_slice(a, &values).unwrap();
        let indices: Vec<u32> = (0..12).map(|i| (i * 53) % 512).collect();
        m.offload(0)
            .run(move |ctx| -> Result<(Vec<u32>, Addr), SimError> {
                let plan = crate::GatherPlan::new(a, 4, indices);
                let mark = ctx.local_alloc_mark();
                loop {
                    match ctx.gather(&plan) {
                        Ok(local) => {
                            assert_eq!(
                                ctx.local_alloc_mark(),
                                mark + plan.total_bytes(),
                                "exactly one packed buffer may remain allocated"
                            );
                            let v = ctx.local_read_slice::<u32>(local, plan.len() as u32)?;
                            return Ok((v, local));
                        }
                        Err(SimError::Fault(_)) => {
                            assert_eq!(
                                ctx.local_alloc_mark(),
                                mark,
                                "a faulted gather must release its whole batch"
                            );
                        }
                        Err(other) => return Err(other),
                    }
                }
            })
            .unwrap()
            .unwrap()
    }

    #[test]
    fn gather_shows_up_on_its_own_trace_lane() {
        let mut m = machine();
        m.events_mut().set_enabled(true);
        let a = m.alloc_main_slice::<u32>(8).unwrap();
        m.main_mut().write_pod_slice(a, &[5u32; 8]).unwrap();
        m.offload(0)
            .run(|ctx| {
                let plan = crate::GatherPlan::new(a, 4, vec![7, 0]);
                ctx.gather(&plan).map(|_| ())
            })
            .unwrap()
            .unwrap();
        let json = crate::chrome_trace_json(m.events());
        assert!(json.contains("\"gather 0\""), "gather lane is named");
        assert!(json.contains("\"elems\":2"), "{json}");
        let report = m.utilization_report();
        assert!(report.contains("gathers: 1 plans"), "{report}");
    }
}
