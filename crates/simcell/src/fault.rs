//! Deterministic fault injection for the simulated machine.
//!
//! Shipped games must degrade gracefully when explicit DMA on
//! non-coherent memory goes wrong; this module lets the simulator
//! *manufacture* those failures on demand so the recovery machinery in
//! `offload_rt` can be measured instead of hoped about.
//!
//! A [`FaultPlan`] is a seed plus a set of per-operation fault rates.
//! Installing one on a [`Machine`](crate::Machine) arms an
//! xrng-driven fault plane: every launch, DMA transfer, tag wait and
//! local-store read rolls against its rate, and the rolls are consumed
//! in the (deterministic, sequential) order the simulator performs
//! those operations. The same seed therefore yields a bit-identical
//! fault schedule, trace and final world state on every run — there is
//! no wall-clock nondeterminism anywhere in the plane.
//!
//! Faults cost nothing when disabled: with no plan installed every
//! hook is a single always-false branch, no RNG state advances, and no
//! event is recorded. A plan whose rates are all zero is likewise
//! bit-identical to no plan at all: the plane's roll hooks
//! short-circuit zero rates without consuming the generator.
//!
//! What can go wrong (one [`FaultKind`] each):
//!
//! - **DMA corruption** — the transfer lands but the first quadword of
//!   the destination is scribbled (XOR `0xA5`).
//! - **DMA drop** — the transfer is charged but the destination keeps
//!   its old bytes.
//! - **Tag timeout** — a tag-group wait stalls for
//!   [`FaultPlan::timeout_stall`] extra cycles and leaves a sticky
//!   [`FaultError::TagTimeout`] on the context.
//! - **Accelerator stall** — a launch is delayed by
//!   [`FaultPlan::stall_cycles`] before the block starts.
//! - **Accelerator death** — the accelerator dies at a launch boundary
//!   and every later launch on it fails fast with
//!   [`FaultError::AccelDead`]; schedulers evict it mid-run.
//! - **Local-store poison** — a local-store read raises
//!   [`FaultError::LsPoisoned`] (a parity error, in hardware terms).

use std::error::Error;
use std::fmt;

use xrng::Rng;

/// A seeded, declarative schedule of fault rates.
///
/// Rates are per-operation probabilities in `[0, 1]`; a rate of zero
/// disables that fault class without consuming any randomness. Build
/// one with [`FaultPlan::new`] plus the `with_*` setters, or
/// [`FaultPlan::uniform`] for a quick storm.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FaultPlan {
    /// Seed for the fault plane's private RNG stream.
    pub seed: u64,
    /// Probability that a DMA transfer lands corrupted.
    pub dma_corrupt: f32,
    /// Probability that a DMA transfer is silently dropped.
    pub dma_drop: f32,
    /// Probability that a tag-group wait times out.
    pub tag_timeout: f32,
    /// Extra cycles a timed-out wait stalls before giving up.
    pub timeout_stall: u64,
    /// Probability that a launch stalls before starting.
    pub accel_stall: f32,
    /// Cycles a stalled launch is delayed by.
    pub stall_cycles: u64,
    /// Probability that a launch kills the accelerator outright.
    pub accel_death: f32,
    /// Probability that a local-store read observes poisoned data.
    pub ls_poison: f32,
}

impl FaultPlan {
    /// A plan with the given seed and every rate at zero.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            dma_corrupt: 0.0,
            dma_drop: 0.0,
            tag_timeout: 0.0,
            timeout_stall: 2_000,
            accel_stall: 0.0,
            stall_cycles: 5_000,
            accel_death: 0.0,
            ls_poison: 0.0,
        }
    }

    /// A plan where every transfer- and launch-level fault fires at
    /// `rate` and accelerator death at a quarter of it. Local-store
    /// poison stays at zero: it rolls once per local *read*, so any
    /// per-transfer rate would fault nearly every attempt of a real
    /// workload — opt in with [`FaultPlan::with_ls_poison`] at a rate
    /// scaled to the read count instead.
    pub fn uniform(seed: u64, rate: f32) -> FaultPlan {
        FaultPlan::new(seed)
            .with_dma_corrupt(rate)
            .with_dma_drop(rate)
            .with_tag_timeout(rate)
            .with_accel_stall(rate)
            .with_accel_death(rate * 0.25)
    }

    /// Set the DMA corruption rate.
    #[must_use]
    pub fn with_dma_corrupt(mut self, rate: f32) -> FaultPlan {
        self.dma_corrupt = rate;
        self
    }

    /// Set the DMA drop rate.
    #[must_use]
    pub fn with_dma_drop(mut self, rate: f32) -> FaultPlan {
        self.dma_drop = rate;
        self
    }

    /// Set the tag-timeout rate.
    #[must_use]
    pub fn with_tag_timeout(mut self, rate: f32) -> FaultPlan {
        self.tag_timeout = rate;
        self
    }

    /// Set how many cycles a timed-out wait stalls for.
    #[must_use]
    pub fn with_timeout_stall(mut self, cycles: u64) -> FaultPlan {
        self.timeout_stall = cycles;
        self
    }

    /// Set the launch-stall rate.
    #[must_use]
    pub fn with_accel_stall(mut self, rate: f32) -> FaultPlan {
        self.accel_stall = rate;
        self
    }

    /// Set how many cycles a stalled launch is delayed by.
    #[must_use]
    pub fn with_stall_cycles(mut self, cycles: u64) -> FaultPlan {
        self.stall_cycles = cycles;
        self
    }

    /// Set the accelerator-death rate.
    #[must_use]
    pub fn with_accel_death(mut self, rate: f32) -> FaultPlan {
        self.accel_death = rate;
        self
    }

    /// Set the local-store poison rate.
    #[must_use]
    pub fn with_ls_poison(mut self, rate: f32) -> FaultPlan {
        self.ls_poison = rate;
        self
    }

    /// True if every rate is zero (the plan can never fire).
    pub fn is_quiet(&self) -> bool {
        self.dma_corrupt <= 0.0
            && self.dma_drop <= 0.0
            && self.tag_timeout <= 0.0
            && self.accel_stall <= 0.0
            && self.accel_death <= 0.0
            && self.ls_poison <= 0.0
    }
}

/// A fault observed by running code, carried in
/// [`SimError::Fault`](crate::SimError::Fault).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultError {
    /// A DMA transfer completed with corrupted payload.
    DmaCorrupted {
        /// Accelerator whose transfer was corrupted.
        accel: u16,
        /// Tag the transfer was issued on.
        tag: u8,
        /// Size of the transfer in bytes.
        bytes: u32,
    },
    /// A DMA transfer was charged but never landed.
    DmaDropped {
        /// Accelerator whose transfer was dropped.
        accel: u16,
        /// Tag the transfer was issued on.
        tag: u8,
        /// Size of the transfer in bytes.
        bytes: u32,
    },
    /// A tag-group wait timed out.
    TagTimeout {
        /// Accelerator that waited.
        accel: u16,
        /// Bitmask of the tags waited on.
        mask: u32,
    },
    /// The accelerator is dead; it cannot run offloaded blocks.
    AccelDead {
        /// The dead accelerator.
        accel: u16,
    },
    /// A local-store read observed poisoned data.
    LsPoisoned {
        /// Accelerator whose local store was poisoned.
        accel: u16,
    },
}

impl FaultError {
    /// The accelerator the fault happened on.
    pub fn accel(&self) -> u16 {
        match *self {
            FaultError::DmaCorrupted { accel, .. }
            | FaultError::DmaDropped { accel, .. }
            | FaultError::TagTimeout { accel, .. }
            | FaultError::AccelDead { accel }
            | FaultError::LsPoisoned { accel } => accel,
        }
    }

    /// True for faults a retry can plausibly clear (everything except
    /// accelerator death).
    pub fn is_transient(&self) -> bool {
        !matches!(self, FaultError::AccelDead { .. })
    }
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::DmaCorrupted { accel, tag, bytes } => write!(
                f,
                "DMA transfer of {bytes} bytes on tag {tag} (accel {accel}) landed corrupted"
            ),
            FaultError::DmaDropped { accel, tag, bytes } => write!(
                f,
                "DMA transfer of {bytes} bytes on tag {tag} (accel {accel}) was dropped"
            ),
            FaultError::TagTimeout { accel, mask } => write!(
                f,
                "tag-group wait on mask {mask:#x} (accel {accel}) timed out"
            ),
            FaultError::AccelDead { accel } => write!(f, "accelerator {accel} is dead"),
            FaultError::LsPoisoned { accel } => {
                write!(
                    f,
                    "local-store read on accel {accel} observed poisoned data"
                )
            }
        }
    }
}

impl Error for FaultError {}

/// What kind of fault was injected, for the EventLog `faults` lane.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// A DMA transfer's destination was scribbled.
    DmaCorrupt {
        /// Tag the transfer was issued on.
        tag: u8,
        /// Size of the transfer in bytes.
        bytes: u32,
    },
    /// A DMA transfer was charged but its payload discarded.
    DmaDrop {
        /// Tag the transfer was issued on.
        tag: u8,
        /// Size of the transfer in bytes.
        bytes: u32,
    },
    /// A tag-group wait timed out after stalling.
    TagTimeout {
        /// Extra cycles the wait stalled before giving up.
        stall: u64,
    },
    /// A launch was delayed.
    AccelStall {
        /// Cycles the launch was delayed by.
        cycles: u64,
    },
    /// The accelerator died at a launch boundary.
    AccelDeath,
    /// A local-store read observed poisoned data.
    LsPoison,
}

impl FaultKind {
    /// Short stable name, used in trace output.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::DmaCorrupt { .. } => "dma_corrupt",
            FaultKind::DmaDrop { .. } => "dma_drop",
            FaultKind::TagTimeout { .. } => "tag_timeout",
            FaultKind::AccelStall { .. } => "accel_stall",
            FaultKind::AccelDeath => "accel_death",
            FaultKind::LsPoison => "ls_poison",
        }
    }
}

/// What kind of recovery action the runtime took, for the EventLog
/// `faults` lane.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryKind {
    /// A faulted tile run is being retried after a backoff.
    Retry {
        /// The tile being retried.
        tile: u32,
        /// Which attempt this is (1 = first retry).
        attempt: u32,
        /// Backoff charged before re-running, in cycles.
        backoff: u64,
    },
    /// A dead accelerator was evicted from the scheduler.
    Evict {
        /// How many queued tiles were redistributed.
        tiles_moved: u32,
    },
    /// A tile was degraded to host execution.
    HostFallback {
        /// The tile that fell back.
        tile: u32,
    },
}

impl RecoveryKind {
    /// Short stable name, used in trace output.
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryKind::Retry { .. } => "retry",
            RecoveryKind::Evict { .. } => "evict",
            RecoveryKind::HostFallback { .. } => "host_fallback",
        }
    }
}

/// The machine's fault-injection state: an optional plan, its RNG
/// stream, and which accelerators have died.
///
/// Owned by [`Machine`](crate::Machine); user code installs plans via
/// [`Machine::install_fault_plan`](crate::Machine::install_fault_plan)
/// or the offload builder and never touches this directly.
#[derive(Clone, Debug)]
pub struct FaultPlane {
    plan: Option<FaultPlan>,
    rng: Rng,
    dead: u64,
    suppress: u32,
}

impl FaultPlane {
    /// A disarmed plane: no plan, nothing dead.
    pub(crate) fn new() -> FaultPlane {
        FaultPlane {
            plan: None,
            rng: Rng::new(0),
            dead: 0,
            suppress: 0,
        }
    }

    /// Arm the plane with `plan`: resets the RNG stream to the plan's
    /// seed and revives every accelerator.
    pub(crate) fn install(&mut self, plan: FaultPlan) {
        self.rng = Rng::new(plan.seed);
        self.plan = Some(plan);
        self.dead = 0;
    }

    /// Disarm the plane and revive every accelerator.
    pub(crate) fn clear(&mut self) {
        self.plan = None;
        self.dead = 0;
    }

    /// Full reset back to the as-constructed state: disarmed, everyone
    /// alive, the RNG stream re-seeded to the disarmed default, and any
    /// suppression depth forgotten. Used by `Machine::reset_for_seed`
    /// so a recycled machine is bit-identical to a new one.
    pub(crate) fn reset(&mut self) {
        self.plan = None;
        self.rng = Rng::new(0);
        self.dead = 0;
        self.suppress = 0;
    }

    /// The installed plan, if any.
    pub(crate) fn plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// True when faults can fire right now (armed and not suppressed).
    #[inline]
    pub(crate) fn active(&self) -> bool {
        self.plan.is_some() && self.suppress == 0
    }

    /// True when faults can *actually* fire: armed, not suppressed, and
    /// at least one rate above zero. This is the put-journal gate — a
    /// quiet plan (all rates zero) can never need a rollback, so paying
    /// the pre-image snapshot cost for it would be pure waste.
    #[inline]
    pub(crate) fn noisy(&self) -> bool {
        self.suppress == 0 && self.plan.as_ref().is_some_and(|p| !p.is_quiet())
    }

    /// Suppress injection (used while running host fallbacks — the
    /// host does not share the accelerators' failure modes).
    pub(crate) fn push_suppress(&mut self) {
        self.suppress += 1;
    }

    /// Undo one [`FaultPlane::push_suppress`].
    pub(crate) fn pop_suppress(&mut self) {
        self.suppress = self.suppress.saturating_sub(1);
    }

    /// True if `accel` has died.
    #[inline]
    pub(crate) fn is_dead(&self, accel: u16) -> bool {
        accel < 64 && self.dead & (1u64 << accel) != 0
    }

    /// Mark `accel` dead.
    pub(crate) fn mark_dead(&mut self, accel: u16) {
        if accel < 64 {
            self.dead |= 1u64 << accel;
        }
    }

    /// Roll against `rate`. A rate of zero (or below) returns false
    /// *without consuming the generator*, so an all-zero plan is
    /// bit-identical to no plan at all.
    #[inline]
    pub(crate) fn roll(&mut self, rate: f32) -> bool {
        if rate <= 0.0 {
            return false;
        }
        self.rng.unit_f32() < rate
    }

    /// Roll the partitioned corrupt/drop decision for one DMA
    /// transfer. A single draw covers both outcomes so the schedule
    /// does not depend on which of the two rates is enabled.
    #[inline]
    pub(crate) fn roll_dma(&mut self) -> Option<DmaFault> {
        let plan = match self.plan {
            Some(ref p) => p,
            None => return None,
        };
        let (corrupt, drop) = (plan.dma_corrupt.max(0.0), plan.dma_drop.max(0.0));
        if corrupt + drop <= 0.0 {
            return None;
        }
        let r = self.rng.unit_f32();
        if r < corrupt {
            Some(DmaFault::Corrupt)
        } else if r < corrupt + drop {
            Some(DmaFault::Drop)
        } else {
            None
        }
    }
}

/// Outcome of the per-transfer corrupt/drop roll.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum DmaFault {
    /// Scribble the destination after the copy.
    Corrupt,
    /// Restore the destination's old bytes after the copy.
    Drop,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_consume_no_randomness() {
        let mut plane = FaultPlane::new();
        plane.install(FaultPlan::new(42));
        let before = plane.rng.clone();
        for _ in 0..100 {
            assert!(!plane.roll(0.0));
            assert!(plane.roll_dma().is_none());
        }
        // The stream is untouched: the next draw matches a fresh seed.
        let mut fresh = Rng::new(42);
        let mut after = before;
        assert_eq!(after.next_u64(), fresh.next_u64());
    }

    #[test]
    fn same_seed_same_rolls() {
        let plan = FaultPlan::uniform(7, 0.3);
        let mut a = FaultPlane::new();
        let mut b = FaultPlane::new();
        a.install(plan);
        b.install(plan);
        for _ in 0..1_000 {
            assert_eq!(a.roll(plan.dma_corrupt), b.roll(plan.dma_corrupt));
            assert_eq!(a.roll_dma(), b.roll_dma());
        }
    }

    #[test]
    fn suppression_masks_injection() {
        let mut plane = FaultPlane::new();
        plane.install(FaultPlan::uniform(1, 1.0));
        assert!(plane.active());
        plane.push_suppress();
        assert!(!plane.active());
        plane.pop_suppress();
        assert!(plane.active());
    }

    #[test]
    fn death_bookkeeping() {
        let mut plane = FaultPlane::new();
        plane.install(FaultPlan::new(3));
        assert!(!plane.is_dead(2));
        plane.mark_dead(2);
        assert!(plane.is_dead(2));
        // Reinstalling revives everything.
        plane.install(FaultPlan::new(3));
        assert!(!plane.is_dead(2));
    }

    #[test]
    fn fault_error_accessors() {
        let err = FaultError::DmaDropped {
            accel: 3,
            tag: 9,
            bytes: 128,
        };
        assert_eq!(err.accel(), 3);
        assert!(err.is_transient());
        assert!(!FaultError::AccelDead { accel: 1 }.is_transient());
        assert!(err.to_string().contains("dropped"));
    }

    #[test]
    fn quiet_plan_detection() {
        assert!(FaultPlan::new(5).is_quiet());
        assert!(!FaultPlan::uniform(5, 0.1).is_quiet());
    }

    #[test]
    fn quiet_plans_are_not_noisy() {
        let mut plane = FaultPlane::new();
        assert!(!plane.noisy());
        plane.install(FaultPlan::new(5));
        assert!(plane.active());
        assert!(!plane.noisy(), "an all-zero plan can never roll a fault");
        plane.install(FaultPlan::uniform(5, 0.1));
        assert!(plane.noisy());
        plane.push_suppress();
        assert!(!plane.noisy());
    }
}
