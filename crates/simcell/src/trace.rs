//! Trace exporters and the always-on machine counter block.
//!
//! The paper's §4.2 advice is "choose by profiling": several software
//! caches favour different behaviours, and only measurement tells you
//! which one fits an offload. This module is the measurement half of
//! the simulator:
//!
//! - [`MachineStats`] — a cheap, always-on counter block (plain integer
//!   adds, no allocation, no simulated cycles) summarising offloads,
//!   host traffic, explicit DMA traffic, and software-cache behaviour,
//! - [`chrome_trace_json`] — exports an enabled [`EventLog`] as Chrome
//!   trace-event JSON, loadable in [Perfetto](https://ui.perfetto.dev)
//!   or `chrome://tracing` (see `PROFILING.md` for the reading guide),
//! - [`parse_chrome_trace`] — a minimal parser for that JSON, used by
//!   the round-trip tests and handy as a validity check,
//! - [`ascii_timeline`] — a terminal-friendly rendering of the same
//!   timeline, used by the `sim_profile` example and `PROFILING.md`,
//! - [`Machine::utilization_report`] — a plain-text per-run report
//!   merging [`MachineStats`] with per-engine DMA statistics,
//! - [`AccessTrace`] (re-exported from `softcache::autotune`) — the
//!   access-trace capture mode: when enabled via
//!   [`Machine::access_trace_mut`], every outer/cached access an
//!   offload issues is recorded as `(span, read/write, offset, len)`
//!   alongside its compute cycles, forming the input to the
//!   cache-policy autotuner (`softcache::autotune::autotune`).
//!
//! Everything here reads state; nothing advances a clock. The
//! determinism regression test pins that tracing on/off leaves every
//! simulated cycle count bit-identical.
//!
//! # Example
//!
//! ```
//! use simcell::{Machine, MachineConfig};
//! use simcell::trace::{chrome_trace_json, parse_chrome_trace};
//!
//! # fn main() -> Result<(), simcell::SimError> {
//! let mut machine = Machine::new(MachineConfig::small())?;
//! machine.events_mut().set_enabled(true);
//! machine.offload(0).run(|ctx| ctx.compute(500))?;
//! let json = chrome_trace_json(machine.events());
//! let events = parse_chrome_trace(&json).expect("exporter emits valid JSON");
//! assert!(events.iter().any(|e| e.name == "offload"));
//! # Ok(())
//! # }
//! ```

use std::fmt;

use dma::DmaDirection;

use crate::event::{CoreId, Event, EventKind, EventLog};
use crate::machine::Machine;

pub use softcache::autotune::{AccessRecord, AccessTrace, TraceOp};

/// Always-on machine-level counters.
///
/// Updated unconditionally (the cost is a handful of integer adds per
/// operation — never an allocation, never a simulated cycle), so every
/// run has a free utilization summary even with the event log disabled.
///
/// Scope: these counters cover *machine-level* operations — host
/// accesses, offload lifecycle, explicit context-level DMA (including
/// synchronous outer accesses), and software-cache accesses routed
/// through [`crate::AccelCtx`]. Traffic a cache generates internally is
/// accounted by its own [`softcache::CacheStats`] and by the per-engine
/// [`dma::DmaStats`]; the utilization report merges all three views.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct MachineStats {
    /// Offload threads launched.
    pub offloads: u64,
    /// Offload threads joined.
    pub joins: u64,
    /// Bytes the host read from main memory (charged accesses only).
    pub host_bytes_read: u64,
    /// Bytes the host wrote to main memory (charged accesses only).
    pub host_bytes_written: u64,
    /// Explicit `dma_get` commands issued through accelerator contexts.
    pub dma_gets: u64,
    /// Explicit `dma_put` commands issued through accelerator contexts.
    pub dma_puts: u64,
    /// Bytes moved into local stores by explicit context-level DMA.
    pub dma_bytes_to_local: u64,
    /// Bytes moved out of local stores by explicit context-level DMA.
    pub dma_bytes_from_local: u64,
    /// Line-grain hits across all context-routed software-cache accesses.
    pub cache_hits: u64,
    /// Line-grain misses across all context-routed software-cache accesses.
    pub cache_misses: u64,
    /// Lines evicted across all context-routed software-cache accesses.
    pub cache_evictions: u64,
    /// Bytes software caches fetched from remote memory (context-routed).
    pub cache_bytes_fetched: u64,
    /// Bytes software caches wrote back to remote memory (context-routed).
    pub cache_bytes_written_back: u64,
    /// Total cycles offload threads occupied accelerators.
    pub accel_busy_cycles: u64,
    /// Tiles dispatched by a tile scheduler (see `offload_rt::sched`).
    pub sched_tiles: u64,
    /// Tiles a work-stealing scheduler moved between accelerator queues.
    pub sched_steals: u64,
    /// Simulated cycles charged to thieves for those steals.
    pub sched_steal_cycles: u64,
    /// Accelerator cycles a scheduler reported as idle gaps while its
    /// task was in flight.
    pub sched_idle_cycles: u64,
    /// Total faults injected by the fault plane (all kinds).
    pub faults_injected: u64,
    /// DMA transfers that landed corrupted.
    pub fault_dma_corrupt: u64,
    /// DMA transfers that were charged but dropped.
    pub fault_dma_drop: u64,
    /// Tag-group waits that timed out.
    pub fault_timeouts: u64,
    /// Launches delayed by an injected stall.
    pub fault_stalls: u64,
    /// Cycles lost to injected stalls and timeout waits.
    pub fault_stall_cycles: u64,
    /// Accelerators killed at a launch boundary.
    pub fault_deaths: u64,
    /// Local-store reads that observed poisoned data.
    pub fault_ls_poison: u64,
    /// Tile runs the recovery layer retried after a fault.
    pub recovery_retries: u64,
    /// Cycles charged as backoff before those retries.
    pub recovery_backoff_cycles: u64,
    /// Dead accelerators evicted from a scheduler mid-run.
    pub recovery_evictions: u64,
    /// Tiles degraded to host execution after exhausting retries.
    pub recovery_fallbacks: u64,
    /// Host cycles spent running those fallback tiles (penalty
    /// included).
    pub recovery_fallback_cycles: u64,
    /// Per-stage chunk executions a pipeline runtime performed (see
    /// `offload_rt::pipeline`).
    pub pipe_stage_runs: u64,
    /// Stream chunks a pipeline pushed through all of its stages.
    pub pipe_chunks: u64,
    /// Accelerator cycles pipeline stages stalled waiting for their
    /// input chunk to be produced.
    pub pipe_input_wait_cycles: u64,
    /// Accelerator cycles pipeline stages stalled on a full inter-stage
    /// queue (backpressure).
    pub pipe_backpressure_cycles: u64,
    /// Put-journal pre-image snapshots taken (one per journalled put
    /// while a fault plan with at least one non-zero rate is armed).
    pub journal_snapshots: u64,
    /// Pre-image bytes those snapshots copied.
    pub journal_bytes: u64,
    /// Journal snapshots *skipped* because the put's destination was
    /// declared [`AccessMode::Write`](memspace::AccessMode::Write) — a
    /// retry fully rewrites the range, so rollback needs no pre-image.
    pub journal_snapshots_skipped: u64,
    /// Pre-image bytes those skipped snapshots would have copied.
    pub journal_bytes_skipped: u64,
    /// Write-back DMA transfers elided because the target range was
    /// declared [`AccessMode::Read`](memspace::AccessMode::Read).
    pub dma_writebacks_elided: u64,
    /// Bytes those elided write-backs would have transferred.
    pub dma_writeback_bytes_elided: u64,
    /// Gather plans executed (each one batch of coalesced descriptors
    /// fetched into a packed local buffer; see `simcell::GatherPlan`).
    pub gathers: u64,
    /// Elements those gathers requested.
    pub gather_elems: u64,
    /// Coalesced DMA descriptors the plans compiled to (each one
    /// `dma_get`; the gap between `gather_elems` and this is the win
    /// over per-element outer accesses).
    pub gather_descriptors: u64,
    /// Bytes the gathers fetched into packed local buffers.
    pub gather_bytes: u64,
}

impl MachineStats {
    /// Total bytes that crossed a memory-space boundary via explicit
    /// DMA, in either direction.
    pub fn dma_bytes_total(&self) -> u64 {
        self.dma_bytes_to_local + self.dma_bytes_from_local
    }

    /// Line-grain cache hit rate in `[0, 1]`; zero with no accesses.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for MachineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} offloads ({} joined), host {} B read / {} B written, \
             dma {} gets / {} puts ({} B in, {} B out), \
             cache {} hits / {} misses / {} evictions, accel busy {} cycles",
            self.offloads,
            self.joins,
            self.host_bytes_read,
            self.host_bytes_written,
            self.dma_gets,
            self.dma_puts,
            self.dma_bytes_to_local,
            self.dma_bytes_from_local,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.accel_busy_cycles,
        )
    }
}

// ---- Chrome trace-event export ------------------------------------------

/// Thread-id layout of the exported trace: the host runs on tid 0,
/// accelerator *n* on tid `1 + n`, accelerator *n*'s DMA lane on tid
/// `DMA_LANE_BASE + n`, its scheduler lane on tid
/// `SCHED_LANE_BASE + n`, its fault lane on tid `FAULT_LANE_BASE + n`,
/// and its pipeline lane on tid `PIPE_LANE_BASE + n`.
pub const DMA_LANE_BASE: u64 = 100;

/// Base thread id of the per-accelerator scheduler lanes (tile
/// assignment and idle-gap slices; see `offload_rt::sched`).
pub const SCHED_LANE_BASE: u64 = 200;

/// Base thread id of the per-accelerator fault lanes (injected faults
/// and recovery actions; see [`crate::fault`]).
pub const FAULT_LANE_BASE: u64 = 300;

/// Base thread id of the per-accelerator pipeline lanes (per-stage
/// chunk runs and input/backpressure stalls; see
/// `offload_rt::pipeline`).
pub const PIPE_LANE_BASE: u64 = 400;

/// Base thread id of the per-accelerator gather lanes (whole gather
/// batches as issue→drain slices; see `simcell::GatherPlan` and
/// [`crate::AccelCtx::gather`]).
pub const GATHER_LANE_BASE: u64 = 500;

/// Thread id of accelerator `accel`'s execution lane.
pub fn accel_tid(accel: u16) -> u64 {
    1 + u64::from(accel)
}

/// Thread id of accelerator `accel`'s DMA lane.
pub fn dma_tid(accel: u16) -> u64 {
    DMA_LANE_BASE + u64::from(accel)
}

/// Thread id of accelerator `accel`'s scheduler lane.
pub fn sched_tid(accel: u16) -> u64 {
    SCHED_LANE_BASE + u64::from(accel)
}

/// Thread id of accelerator `accel`'s fault lane.
pub fn fault_tid(accel: u16) -> u64 {
    FAULT_LANE_BASE + u64::from(accel)
}

/// Thread id of accelerator `accel`'s pipeline lane.
pub fn pipe_tid(accel: u16) -> u64 {
    PIPE_LANE_BASE + u64::from(accel)
}

/// Thread id of accelerator `accel`'s gather lane.
pub fn gather_tid(accel: u16) -> u64 {
    GATHER_LANE_BASE + u64::from(accel)
}

fn tid_of(core: CoreId) -> u64 {
    match core {
        CoreId::Host => 0,
        CoreId::Accel(index) => accel_tid(index),
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct ChromeWriter {
    out: String,
    first: bool,
}

impl ChromeWriter {
    fn new() -> ChromeWriter {
        ChromeWriter {
            out: String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"),
            first: true,
        }
    }

    /// Emits one trace event. `dur` is `Some` for complete ("X") events;
    /// `args` is a preformatted JSON object body (without braces).
    fn event(&mut self, name: &str, ph: char, ts: u64, dur: Option<u64>, tid: u64, args: &str) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push_str("{\"name\":");
        push_json_string(&mut self.out, name);
        self.out.push_str(&format!(
            ",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":0,\"tid\":{tid}"
        ));
        if let Some(dur) = dur {
            self.out.push_str(&format!(",\"dur\":{dur}"));
        }
        if ph == 'i' {
            // Instant events need a scope; thread scope keeps them on
            // their lane.
            self.out.push_str(",\"s\":\"t\"");
        }
        if !args.is_empty() {
            self.out.push_str(",\"args\":{");
            self.out.push_str(args);
            self.out.push('}');
        }
        self.out.push('}');
    }

    fn metadata(&mut self, name: &str, tid: u64, value: &str) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push_str("{\"name\":");
        push_json_string(&mut self.out, name);
        self.out.push_str(&format!(
            ",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":"
        ));
        push_json_string(&mut self.out, value);
        self.out.push_str("}}");
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

/// Exports an event log as Chrome trace-event JSON.
///
/// Load the result in [Perfetto](https://ui.perfetto.dev) or
/// `chrome://tracing`. Timestamps are simulated cycles reported as
/// microseconds (the units are relative; only ratios matter). Lane
/// layout: host on tid 0, accelerator *n* on tid `1+n`, its DMA
/// transfers on tid `100+n`, its scheduler lane on tid `200+n`.
/// Offload intervals and host/accel spans become complete ("X")
/// slices; DMA commands become slices on the DMA lane spanning
/// issue→completion; cache hits/misses/evictions and notes become
/// instant events; local-store high-water marks become counter tracks.
/// Scheduler tile runs (`tile N`) and idle gaps (`idle`) become X
/// slices on the scheduler lane, with enqueues and steals as instants.
/// Injected faults and recovery actions become instants on the fault
/// lane (tid `300+n`), named by their stable kind string
/// (`dma_drop`, `tag_timeout`, `retry`, `host_fallback`, …).
/// Pipeline chunk runs (`s<K> chunk N`) and stalls (`input wait` /
/// `backpressure`) become X slices on the pipeline lane (tid `400+n`).
/// Gather batches become X slices on the gather lane (tid `500+n`)
/// spanning issue→drain, with elems/descriptors/bytes as args.
pub fn chrome_trace_json(log: &EventLog) -> String {
    let mut w = ChromeWriter::new();
    w.metadata("process_name", 0, "offload-sim");
    w.metadata("thread_name", 0, "host");

    let events = log.sorted();
    // Name each lane that actually appears.
    let mut seen_accel = [false; 64];
    let mut seen_dma = [false; 64];
    let mut seen_sched = [false; 64];
    let mut seen_fault = [false; 64];
    let mut seen_pipe = [false; 64];
    let mut seen_gather = [false; 64];
    for e in &events {
        if let CoreId::Accel(a) = e.core() {
            let a = a as usize;
            if a < 64 && !seen_accel[a] {
                seen_accel[a] = true;
                w.metadata("thread_name", accel_tid(a as u16), &format!("accel {a}"));
            }
        }
        if let EventKind::DmaIssue { accel, .. } = e.kind {
            let a = accel as usize;
            if a < 64 && !seen_dma[a] {
                seen_dma[a] = true;
                w.metadata("thread_name", dma_tid(accel), &format!("dma {a}"));
            }
        }
        let sched_accel = match e.kind {
            EventKind::SchedEnqueue { accel, .. }
            | EventKind::SchedRun { accel, .. }
            | EventKind::SchedIdle { accel, .. } => Some(accel),
            EventKind::SchedSteal { thief, .. } => Some(thief),
            _ => None,
        };
        if let Some(accel) = sched_accel {
            let a = accel as usize;
            if a < 64 && !seen_sched[a] {
                seen_sched[a] = true;
                w.metadata("thread_name", sched_tid(accel), &format!("sched {a}"));
            }
        }
        if let EventKind::FaultInjected { accel, .. } | EventKind::RecoveryApplied { accel, .. } =
            e.kind
        {
            let a = accel as usize;
            if a < 64 && !seen_fault[a] {
                seen_fault[a] = true;
                w.metadata("thread_name", fault_tid(accel), &format!("faults {a}"));
            }
        }
        if let EventKind::PipeRun { accel, .. } | EventKind::PipeWait { accel, .. } = e.kind {
            let a = accel as usize;
            if a < 64 && !seen_pipe[a] {
                seen_pipe[a] = true;
                w.metadata("thread_name", pipe_tid(accel), &format!("pipe {a}"));
            }
        }
        if let EventKind::Gather { accel, .. } = e.kind {
            let a = accel as usize;
            if a < 64 && !seen_gather[a] {
                seen_gather[a] = true;
                w.metadata("thread_name", gather_tid(accel), &format!("gather {a}"));
            }
        }
    }

    // Open-interval bookkeeping: offloads pair Start/End per accel.
    let mut open_offload: Vec<(u16, u64, &'static str)> = Vec::new();
    for e in &events {
        match &e.kind {
            EventKind::OffloadStart { accel, name } => {
                open_offload.push((*accel, e.at, name));
            }
            EventKind::OffloadEnd { accel } => {
                if let Some(pos) = open_offload.iter().rposition(|(a, _, _)| a == accel) {
                    let (_, start, name) = open_offload.remove(pos);
                    w.event(
                        name,
                        'X',
                        start,
                        Some(e.at - start),
                        accel_tid(*accel),
                        &format!("\"accel\":{accel}"),
                    );
                }
            }
            EventKind::Join { accel } => {
                w.event("join", 'i', e.at, None, 0, &format!("\"accel\":{accel}"));
            }
            EventKind::Note { text } => {
                w.event(text, 'i', e.at, None, 0, "");
            }
            EventKind::SpanStart { core, name } => {
                w.event(name, 'B', e.at, None, tid_of(*core), "");
            }
            EventKind::SpanEnd { core, name } => {
                w.event(name, 'E', e.at, None, tid_of(*core), "");
            }
            EventKind::DmaIssue {
                accel,
                tag,
                bytes,
                dir,
                complete_at,
            } => {
                let name = match dir {
                    DmaDirection::Get => "dma_get",
                    DmaDirection::Put => "dma_put",
                };
                w.event(
                    name,
                    'X',
                    e.at,
                    Some(complete_at.saturating_sub(e.at)),
                    dma_tid(*accel),
                    &format!("\"tag\":{tag},\"bytes\":{bytes}"),
                );
            }
            EventKind::DmaWait {
                accel,
                mask,
                resumed_at,
            } => {
                w.event(
                    "dma_wait",
                    'X',
                    e.at,
                    Some(resumed_at.saturating_sub(e.at)),
                    accel_tid(*accel),
                    &format!("\"mask\":{mask}"),
                );
            }
            EventKind::Gather {
                accel,
                elems,
                descriptors,
                bytes,
                complete_at,
            } => {
                w.event(
                    "gather",
                    'X',
                    e.at,
                    Some(complete_at.saturating_sub(e.at)),
                    gather_tid(*accel),
                    &format!("\"elems\":{elems},\"descriptors\":{descriptors},\"bytes\":{bytes}"),
                );
            }
            EventKind::CacheHit { accel, count } => {
                w.event(
                    "cache_hit",
                    'i',
                    e.at,
                    None,
                    accel_tid(*accel),
                    &format!("\"count\":{count}"),
                );
            }
            EventKind::CacheMiss {
                accel,
                count,
                bytes_fetched,
            } => {
                w.event(
                    "cache_miss",
                    'i',
                    e.at,
                    None,
                    accel_tid(*accel),
                    &format!("\"count\":{count},\"bytes_fetched\":{bytes_fetched}"),
                );
            }
            EventKind::CacheEvict { accel, count } => {
                w.event(
                    "cache_evict",
                    'i',
                    e.at,
                    None,
                    accel_tid(*accel),
                    &format!("\"count\":{count}"),
                );
            }
            EventKind::LsHighWater { accel, bytes } => {
                w.event(
                    "ls_high_water",
                    'C',
                    e.at,
                    None,
                    accel_tid(*accel),
                    &format!("\"bytes\":{bytes}"),
                );
            }
            EventKind::SchedEnqueue { accel, tile } => {
                w.event(
                    "enqueue",
                    'i',
                    e.at,
                    None,
                    sched_tid(*accel),
                    &format!("\"tile\":{tile}"),
                );
            }
            EventKind::SchedRun {
                accel,
                tile,
                end,
                stolen_from,
            } => {
                let mut args = format!("\"tile\":{tile},\"accel\":{accel}");
                if let Some(victim) = stolen_from {
                    args.push_str(&format!(",\"stolen_from\":{victim}"));
                }
                w.event(
                    &format!("tile {tile}"),
                    'X',
                    e.at,
                    Some(end.saturating_sub(e.at)),
                    sched_tid(*accel),
                    &args,
                );
            }
            EventKind::SchedIdle { accel, until } => {
                w.event(
                    "idle",
                    'X',
                    e.at,
                    Some(until.saturating_sub(e.at)),
                    sched_tid(*accel),
                    &format!("\"accel\":{accel}"),
                );
            }
            EventKind::SchedSteal {
                thief,
                victim,
                tile,
                cost,
            } => {
                w.event(
                    "steal",
                    'i',
                    e.at,
                    None,
                    sched_tid(*thief),
                    &format!("\"victim\":{victim},\"tile\":{tile},\"cost\":{cost}"),
                );
            }
            EventKind::PipeRun {
                accel,
                stage,
                chunk,
                end,
            } => {
                w.event(
                    &format!("s{stage} chunk {chunk}"),
                    'X',
                    e.at,
                    Some(end.saturating_sub(e.at)),
                    pipe_tid(*accel),
                    &format!("\"accel\":{accel},\"stage\":{stage},\"chunk\":{chunk}"),
                );
            }
            EventKind::PipeWait {
                accel,
                stage,
                chunk,
                until,
                backpressure,
            } => {
                let name = if *backpressure {
                    "backpressure"
                } else {
                    "input wait"
                };
                w.event(
                    name,
                    'X',
                    e.at,
                    Some(until.saturating_sub(e.at)),
                    pipe_tid(*accel),
                    &format!("\"accel\":{accel},\"stage\":{stage},\"chunk\":{chunk}"),
                );
            }
            EventKind::FaultInjected { accel, fault } => {
                use crate::fault::FaultKind;
                let mut args = format!("\"accel\":{accel},\"kind\":\"{}\"", fault.name());
                match fault {
                    FaultKind::DmaCorrupt { tag, bytes } | FaultKind::DmaDrop { tag, bytes } => {
                        args.push_str(&format!(",\"tag\":{tag},\"bytes\":{bytes}"));
                    }
                    FaultKind::TagTimeout { stall } => {
                        args.push_str(&format!(",\"stall\":{stall}"));
                    }
                    FaultKind::AccelStall { cycles } => {
                        args.push_str(&format!(",\"cycles\":{cycles}"));
                    }
                    FaultKind::AccelDeath | FaultKind::LsPoison => {}
                }
                w.event(fault.name(), 'i', e.at, None, fault_tid(*accel), &args);
            }
            EventKind::RecoveryApplied { accel, recovery } => {
                use crate::fault::RecoveryKind;
                let mut args = format!("\"accel\":{accel},\"kind\":\"{}\"", recovery.name());
                match recovery {
                    RecoveryKind::Retry {
                        tile,
                        attempt,
                        backoff,
                    } => {
                        args.push_str(&format!(
                            ",\"tile\":{tile},\"attempt\":{attempt},\"backoff\":{backoff}"
                        ));
                    }
                    RecoveryKind::Evict { tiles_moved } => {
                        args.push_str(&format!(",\"tiles_moved\":{tiles_moved}"));
                    }
                    RecoveryKind::HostFallback { tile } => {
                        args.push_str(&format!(",\"tile\":{tile}"));
                    }
                }
                w.event(recovery.name(), 'i', e.at, None, fault_tid(*accel), &args);
            }
        }
    }
    // Close any offloads left open (trace captured mid-offload).
    for (accel, start, name) in open_offload {
        w.event(
            name,
            'B',
            start,
            None,
            accel_tid(accel),
            &format!("\"accel\":{accel}"),
        );
    }
    w.finish()
}

// ---- minimal Chrome trace parser ----------------------------------------

/// One event parsed back out of Chrome trace-event JSON — the fields
/// the workspace's tests and tools care about.
#[derive(Clone, PartialEq, Debug)]
pub struct ChromeEvent {
    /// Event name (slice label, instant label, or metadata kind).
    pub name: String,
    /// Phase: `X` complete, `B`/`E` begin/end, `i` instant, `C` counter,
    /// `M` metadata.
    pub ph: char,
    /// Timestamp (simulated cycles); 0 for metadata events.
    pub ts: u64,
    /// Duration for complete events.
    pub dur: Option<u64>,
    /// Thread id (lane).
    pub tid: u64,
}

impl ChromeEvent {
    /// End timestamp of a complete event (`ts` for everything else).
    pub fn end(&self) -> u64 {
        self.ts + self.dur.unwrap_or(0)
    }

    /// Whether two complete events overlap in time.
    pub fn overlaps(&self, other: &ChromeEvent) -> bool {
        self.ts < other.end() && other.ts < self.end()
    }
}

/// A hand-rolled, dependency-free parser for the subset of JSON the
/// exporter emits (objects, arrays, strings, and unsigned integers).
struct MiniJson<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> MiniJson<'a> {
    fn new(s: &'a str) -> MiniJson<'a> {
        MiniJson {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        let found = self.peek();
        if found == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} (found {:?})",
                c as char,
                self.pos,
                found.map(|b| b as char)
            ))
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                other => {
                    // Re-borrow as chars for multi-byte UTF-8: back up and
                    // take the full char.
                    if other < 0x80 {
                        out.push(other as char);
                    } else {
                        self.pos -= 1;
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|e| e.to_string())?;
                        let c = rest.chars().next().ok_or("empty char")?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())
    }

    /// Skips any JSON value (used for `args` bodies and unknown fields).
    fn skip_value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'"') => {
                self.string()?;
                Ok(())
            }
            Some(b'{') => {
                self.expect(b'{')?;
                if self.eat(b'}') {
                    return Ok(());
                }
                loop {
                    self.string()?;
                    self.expect(b':')?;
                    self.skip_value()?;
                    if !self.eat(b',') {
                        break;
                    }
                }
                self.expect(b'}')
            }
            Some(b'[') => {
                self.expect(b'[')?;
                if self.eat(b']') {
                    return Ok(());
                }
                loop {
                    self.skip_value()?;
                    if !self.eat(b',') {
                        break;
                    }
                }
                self.expect(b']')
            }
            Some(b) if b.is_ascii_digit() => {
                self.number()?;
                Ok(())
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }
}

/// Parses Chrome trace-event JSON produced by [`chrome_trace_json`]
/// back into its events.
///
/// Deliberately minimal — it understands the exporter's subset of the
/// format — but strict within it, so the round-trip test doubles as a
/// validity check on the exporter's output.
///
/// # Errors
///
/// Returns a description of the first malformed construct.
pub fn parse_chrome_trace(json: &str) -> Result<Vec<ChromeEvent>, String> {
    let mut p = MiniJson::new(json);
    p.expect(b'{')?;
    let mut events = Vec::new();
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        if key == "traceEvents" {
            p.expect(b'[')?;
            if !p.eat(b']') {
                loop {
                    events.push(parse_event(&mut p)?);
                    if !p.eat(b',') {
                        break;
                    }
                }
                p.expect(b']')?;
            }
        } else {
            p.skip_value()?;
        }
        if !p.eat(b',') {
            break;
        }
    }
    p.expect(b'}')?;
    Ok(events)
}

fn parse_event(p: &mut MiniJson<'_>) -> Result<ChromeEvent, String> {
    p.expect(b'{')?;
    let mut event = ChromeEvent {
        name: String::new(),
        ph: '?',
        ts: 0,
        dur: None,
        tid: 0,
    };
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "name" => event.name = p.string()?,
            "ph" => {
                let s = p.string()?;
                event.ph = s.chars().next().ok_or("empty ph")?;
            }
            "ts" => event.ts = p.number()?,
            "dur" => event.dur = Some(p.number()?),
            "tid" => event.tid = p.number()?,
            _ => p.skip_value()?,
        }
        if !p.eat(b',') {
            break;
        }
    }
    p.expect(b'}')?;
    if event.ph == '?' {
        return Err(format!("event {:?} has no phase", event.name));
    }
    Ok(event)
}

// ---- ASCII timeline ------------------------------------------------------

/// Renders the log as a fixed-width ASCII timeline, one lane per core
/// plus a DMA lane per accelerator that transferred anything.
///
/// `width` is the number of timeline columns (clamped to at least 10).
/// Host/accel spans draw as `[====]` bars labelled where room permits;
/// DMA transfers draw as `-` runs; cache misses mark `x` on the owning
/// accelerator's lane margin. This is the "screenshots-as-ASCII" view
/// `PROFILING.md` walks through; for real analysis, load the Chrome
/// JSON in Perfetto.
pub fn ascii_timeline(log: &EventLog, width: usize) -> String {
    let width = width.max(10);
    let events = log.sorted();
    let Some(t_end) = events.iter().map(end_cycle).max() else {
        return String::from("(empty trace)\n");
    };
    let t_end = t_end.max(1);
    let col = |cycle: u64| -> usize {
        ((cycle.min(t_end) as u128 * (width as u128 - 1)) / t_end as u128) as usize
    };

    // Lane set: host, then each accel seen, then each DMA lane seen.
    let mut accels: Vec<u16> = Vec::new();
    let mut dma_accels: Vec<u16> = Vec::new();
    for e in &events {
        if let CoreId::Accel(a) = e.core() {
            if !accels.contains(&a) {
                accels.push(a);
            }
        }
        if let EventKind::DmaIssue { accel, .. } = e.kind {
            if !dma_accels.contains(&accel) {
                dma_accels.push(accel);
            }
        }
    }
    accels.sort_unstable();
    dma_accels.sort_unstable();

    let mut lanes: Vec<(String, Vec<u8>)> = Vec::new();
    lanes.push(("host    ".into(), vec![b' '; width]));
    for &a in &accels {
        lanes.push((format!("accel {a} "), vec![b' '; width]));
    }
    for &a in &dma_accels {
        lanes.push((format!("dma {a}   "), vec![b' '; width]));
    }
    let lane_index = |core: CoreId| -> usize {
        match core {
            CoreId::Host => 0,
            CoreId::Accel(a) => 1 + accels.iter().position(|&x| x == a).unwrap_or(0),
        }
    };
    let dma_lane_index = |a: u16| -> usize {
        1 + accels.len() + dma_accels.iter().position(|&x| x == a).unwrap_or(0)
    };

    // Bars never overwrite cells another bar already claimed, so nested
    // spans drawn first stay visible inside their parents. The label
    // lands in the longest run of this bar's own fill.
    let draw_bar =
        |lane: usize, from: u64, to: u64, label: &str, lanes: &mut Vec<(String, Vec<u8>)>| {
            let (c0, c1) = (col(from), col(to).max(col(from)));
            let row = &mut lanes[lane].1;
            if row[c0] == b' ' {
                row[c0] = b'[';
            }
            if row[c1] == b' ' {
                row[c1] = b']';
            }
            let mut filled: Vec<usize> = Vec::new();
            for (i, cell) in row.iter_mut().enumerate().take(c1).skip(c0 + 1) {
                if *cell == b' ' {
                    *cell = b'=';
                    filled.push(i);
                }
            }
            // Longest contiguous run of cells this bar just filled.
            let (mut best_start, mut best_len) = (0usize, 0usize);
            let (mut run_start, mut run_len) = (0usize, 0usize);
            for (k, &i) in filled.iter().enumerate() {
                if k > 0 && filled[k - 1] + 1 == i {
                    run_len += 1;
                } else {
                    run_start = i;
                    run_len = 1;
                }
                if run_len > best_len {
                    best_start = run_start;
                    best_len = run_len;
                }
            }
            // Write the label (truncated if need be) when at least a few
            // characters fit.
            let n = label.len().min(best_len);
            if n >= 3 {
                for (i, &b) in label.as_bytes()[..n].iter().enumerate() {
                    row[best_start + i] = b;
                }
            }
        };

    // Pair spans and offloads into bars, then draw longest first so
    // nested (shorter) spans stay visible on top of their parents.
    let mut bars: Vec<(usize, u64, u64, &'static str)> = Vec::new();
    let mut open_spans: Vec<(CoreId, &'static str, u64)> = Vec::new();
    let mut open_offloads: Vec<(u16, &'static str, u64)> = Vec::new();
    for e in &events {
        match &e.kind {
            EventKind::SpanStart { core, name } => open_spans.push((*core, name, e.at)),
            EventKind::SpanEnd { core, name } => {
                if let Some(pos) = open_spans
                    .iter()
                    .rposition(|(c, n, _)| c == core && n == name)
                {
                    let (_, _, start) = open_spans.remove(pos);
                    bars.push((lane_index(*core), start, e.at, name));
                }
            }
            EventKind::OffloadStart { accel, name } => open_offloads.push((*accel, name, e.at)),
            EventKind::OffloadEnd { accel } => {
                if let Some(pos) = open_offloads.iter().rposition(|(a, _, _)| a == accel) {
                    let (_, name, start) = open_offloads.remove(pos);
                    bars.push((lane_index(CoreId::Accel(*accel)), start, e.at, name));
                }
            }
            _ => {}
        }
    }
    // Shortest first: children claim their cells before parents fill
    // the gaps around them.
    bars.sort_by_key(|&(_, from, to, _)| to - from);
    for (lane, from, to, name) in bars {
        draw_bar(lane, from, to, name, &mut lanes);
    }

    // Point marks draw after the bars: DMA activity, cache misses, joins.
    for e in &events {
        match &e.kind {
            EventKind::DmaIssue {
                accel, complete_at, ..
            } => {
                let lane = dma_lane_index(*accel);
                let (c0, c1) = (col(e.at), col(*complete_at).max(col(e.at)));
                let row = &mut lanes[lane].1;
                for cell in row.iter_mut().take(c1 + 1).skip(c0) {
                    if *cell == b' ' {
                        *cell = b'-';
                    }
                }
            }
            EventKind::CacheMiss { accel, .. } => {
                let lane = lane_index(CoreId::Accel(*accel));
                let c = col(e.at);
                if lanes[lane].1[c] == b' ' {
                    lanes[lane].1[c] = b'x';
                }
            }
            EventKind::Join { .. } => {
                let c = col(e.at);
                lanes[0].1[c] = b'J';
            }
            _ => {}
        }
    }

    let mut out = String::new();
    out.push_str(&format!("cycles 0 .. {t_end}\n"));
    for (label, row) in &lanes {
        out.push_str(label);
        out.push('|');
        out.push_str(std::str::from_utf8(row).expect("ASCII only"));
        out.push_str("|\n");
    }
    out
}

fn end_cycle(e: &Event) -> u64 {
    match e.kind {
        EventKind::DmaIssue { complete_at, .. } => complete_at.max(e.at),
        EventKind::DmaWait { resumed_at, .. } => resumed_at.max(e.at),
        EventKind::SchedRun { end, .. } => end.max(e.at),
        EventKind::SchedIdle { until, .. } => until.max(e.at),
        EventKind::PipeRun { end, .. } => end.max(e.at),
        EventKind::PipeWait { until, .. } => until.max(e.at),
        _ => e.at,
    }
}

// ---- utilization report --------------------------------------------------

impl Machine {
    /// A plain-text utilization report for the run so far: per-core
    /// busy/occupancy figures, DMA traffic per accelerator (including
    /// cache-internal transfers, which the engines count), stall time,
    /// software-cache totals, and local-store high-water marks.
    ///
    /// Works with the event log disabled — everything here comes from
    /// the always-on [`MachineStats`] block and the per-engine
    /// [`dma::DmaStats`].
    pub fn utilization_report(&self) -> String {
        let stats = self.stats();
        let total = self.host_now().max(1);
        let mut out = String::new();
        out.push_str("== utilization report ==\n");
        out.push_str(&format!(
            "host: {} cycles elapsed, {} offloads launched, {} joined\n",
            self.host_now(),
            stats.offloads,
            stats.joins
        ));
        out.push_str(&format!(
            "host memory: {} B read, {} B written\n",
            stats.host_bytes_read, stats.host_bytes_written
        ));
        for accel in 0..self.accel_count() {
            let busy = self.accel_busy_cycles(accel).unwrap_or(0);
            let occupancy = 100.0 * busy as f64 / total as f64;
            let dma = self.dma_stats(accel).unwrap_or_default();
            let hw = self.ls_high_water(accel).unwrap_or(0);
            out.push_str(&format!(
                "accel {accel}: busy {busy} cycles ({occupancy:.1}% of host elapsed), \
                 dma {} gets / {} puts, {} B in / {} B out, {} stall cycles, \
                 {} misaligned, ls high water {hw} B\n",
                dma.gets, dma.puts, dma.bytes_in, dma.bytes_out, dma.stall_cycles, dma.misaligned
            ));
        }
        out.push_str(&format!(
            "explicit dma (context level): {} gets / {} puts, {} B to local / {} B from local\n",
            stats.dma_gets, stats.dma_puts, stats.dma_bytes_to_local, stats.dma_bytes_from_local
        ));
        let accesses = stats.cache_hits + stats.cache_misses;
        if accesses > 0 {
            out.push_str(&format!(
                "software caches: {} hits / {} misses ({:.1}% hit rate), {} evictions, \
                 {} B fetched, {} B written back\n",
                stats.cache_hits,
                stats.cache_misses,
                100.0 * stats.cache_hit_rate(),
                stats.cache_evictions,
                stats.cache_bytes_fetched,
                stats.cache_bytes_written_back
            ));
        }
        if stats.sched_tiles > 0 {
            // Imbalance across the accelerators the scheduler actually
            // used: max busy over mean busy (1.00 = perfectly even).
            let busy: Vec<u64> = (0..self.accel_count())
                .filter_map(|a| self.accel_busy_cycles(a).ok())
                .filter(|&b| b > 0)
                .collect();
            let max = busy.iter().copied().max().unwrap_or(0);
            let mean = if busy.is_empty() {
                0.0
            } else {
                busy.iter().sum::<u64>() as f64 / busy.len() as f64
            };
            let imbalance = if mean > 0.0 { max as f64 / mean } else { 0.0 };
            out.push_str(&format!(
                "scheduler: {} tiles across {} accels, {} steals (+{} steal cycles), \
                 {} idle cycles, imbalance {:.2} (max/mean busy)\n",
                stats.sched_tiles,
                busy.len(),
                stats.sched_steals,
                stats.sched_steal_cycles,
                stats.sched_idle_cycles,
                imbalance
            ));
        }
        if stats.pipe_stage_runs > 0 {
            out.push_str(&format!(
                "pipeline: {} stage runs over {} chunks, {} input-wait cycles, \
                 {} backpressure cycles\n",
                stats.pipe_stage_runs,
                stats.pipe_chunks,
                stats.pipe_input_wait_cycles,
                stats.pipe_backpressure_cycles
            ));
        }
        if stats.gathers > 0 {
            let per = stats.gather_elems as f64 / stats.gather_descriptors.max(1) as f64;
            out.push_str(&format!(
                "gathers: {} plans, {} elems via {} descriptors ({:.1} elems/descriptor), \
                 {} B packed\n",
                stats.gathers,
                stats.gather_elems,
                stats.gather_descriptors,
                per,
                stats.gather_bytes
            ));
        }
        if stats.journal_snapshots > 0
            || stats.journal_snapshots_skipped > 0
            || stats.dma_writebacks_elided > 0
        {
            out.push_str(&format!(
                "access modes: {} journal snapshots ({} B), {} skipped by write \
                 declarations ({} B saved), {} write-backs elided ({} B saved)\n",
                stats.journal_snapshots,
                stats.journal_bytes,
                stats.journal_snapshots_skipped,
                stats.journal_bytes_skipped,
                stats.dma_writebacks_elided,
                stats.dma_writeback_bytes_elided
            ));
        }
        if stats.faults_injected > 0 || stats.recovery_retries > 0 || stats.recovery_fallbacks > 0 {
            out.push_str(&format!(
                "faults: {} injected ({} dma corrupt, {} dma drop, {} timeouts, \
                 {} stalls, {} deaths, {} ls poison), {} cycles lost to stalls\n",
                stats.faults_injected,
                stats.fault_dma_corrupt,
                stats.fault_dma_drop,
                stats.fault_timeouts,
                stats.fault_stalls,
                stats.fault_deaths,
                stats.fault_ls_poison,
                stats.fault_stall_cycles
            ));
            out.push_str(&format!(
                "recovery: {} retries (+{} backoff cycles), {} evictions, \
                 {} host fallbacks (+{} host cycles)\n",
                stats.recovery_retries,
                stats.recovery_backoff_cycles,
                stats.recovery_evictions,
                stats.recovery_fallbacks,
                stats.recovery_fallback_cycles
            ));
        }
        if self.events().is_enabled() {
            out.push_str(&format!(
                "event log: {} events recorded\n",
                self.events().len()
            ));
        } else {
            out.push_str(
                "event log: disabled (enable with machine.events_mut().set_enabled(true))\n",
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::SimError;

    #[test]
    fn machine_stats_rates() {
        let mut s = MachineStats::default();
        assert_eq!(s.cache_hit_rate(), 0.0);
        s.cache_hits = 3;
        s.cache_misses = 1;
        s.dma_bytes_to_local = 100;
        s.dma_bytes_from_local = 28;
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(s.dma_bytes_total(), 128);
        assert!(s.to_string().contains("3 hits"));
    }

    #[test]
    fn json_string_escaping_round_trips() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\te\u{1}f");
        let mut p = MiniJson::new(&out);
        assert_eq!(p.string().unwrap(), "a\"b\\c\nd\te\u{1}f");
    }

    #[test]
    fn empty_log_exports_and_parses() {
        let log = EventLog::new();
        let json = chrome_trace_json(&log);
        let events = parse_chrome_trace(&json).unwrap();
        // Only process/thread metadata, no timeline events.
        assert!(events.iter().all(|e| e.ph == 'M'));
        assert_eq!(ascii_timeline(&log, 60), "(empty trace)\n");
    }

    #[test]
    fn offload_becomes_a_complete_slice() -> Result<(), SimError> {
        let mut m = Machine::new(MachineConfig::small())?;
        m.events_mut().set_enabled(true);
        m.offload(0).run(|ctx| ctx.compute(1000))?;
        let json = chrome_trace_json(m.events());
        let events = parse_chrome_trace(&json).unwrap();
        let slice = events
            .iter()
            .find(|e| e.ph == 'X' && e.name == "offload")
            .expect("offload slice present");
        assert_eq!(slice.tid, accel_tid(0));
        assert_eq!(slice.dur, Some(1000));
        assert!(events.iter().any(|e| e.ph == 'i' && e.name == "join"));
        Ok(())
    }

    #[test]
    fn overlap_predicate() {
        let a = ChromeEvent {
            name: "a".into(),
            ph: 'X',
            ts: 0,
            dur: Some(100),
            tid: 0,
        };
        let b = ChromeEvent {
            name: "b".into(),
            ph: 'X',
            ts: 50,
            dur: Some(100),
            tid: 1,
        };
        let c = ChromeEvent {
            name: "c".into(),
            ph: 'X',
            ts: 100,
            dur: Some(10),
            tid: 1,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c), "touching intervals do not overlap");
    }

    #[test]
    fn ascii_timeline_draws_lanes() -> Result<(), SimError> {
        let mut m = Machine::new(MachineConfig::small())?;
        m.events_mut().set_enabled(true);
        m.span_start("setup");
        m.host_compute(500);
        m.span_end("setup");
        m.offload(0).run(|ctx| ctx.compute(1000))?;
        let art = ascii_timeline(m.events(), 60);
        assert!(art.contains("host    |"));
        assert!(art.contains("accel 0 |"));
        assert!(art.contains('='), "bars are drawn:\n{art}");
        Ok(())
    }

    #[test]
    fn scheduler_lane_round_trips() -> Result<(), SimError> {
        let mut m = Machine::new(MachineConfig::small())?;
        m.events_mut().set_enabled(true);
        m.sched_note_enqueue(0, 0, 0);
        m.sched_note_run(100, 0, 0, 600, None);
        m.sched_note_idle(600, 0, 900);
        m.sched_note_run(900, 0, 1, 1400, Some(1));
        m.sched_note_steal(880, 0, 1, 1, 300);
        let json = chrome_trace_json(m.events());
        let events = parse_chrome_trace(&json).unwrap();
        let lane = sched_tid(0);
        assert!(
            events
                .iter()
                .any(|e| e.ph == 'M' && e.tid == lane && e.name == "thread_name"),
            "sched lane is named"
        );
        let tile0 = events
            .iter()
            .find(|e| e.ph == 'X' && e.name == "tile 0" && e.tid == lane)
            .expect("tile slice");
        assert_eq!((tile0.ts, tile0.dur), (100, Some(500)));
        let idle = events
            .iter()
            .find(|e| e.ph == 'X' && e.name == "idle" && e.tid == lane)
            .expect("idle slice");
        assert_eq!((idle.ts, idle.dur), (600, Some(300)));
        assert!(events
            .iter()
            .any(|e| e.ph == 'i' && e.name == "steal" && e.tid == lane));
        assert!(events
            .iter()
            .any(|e| e.ph == 'i' && e.name == "enqueue" && e.tid == lane));
        Ok(())
    }

    #[test]
    fn pipe_lane_round_trips() -> Result<(), SimError> {
        let mut m = Machine::new(MachineConfig::small())?;
        m.events_mut().set_enabled(true);
        m.pipe_note_run(1000, 0, 1, 3, 1600);
        m.pipe_note_chunk(1600, 3);
        let json = chrome_trace_json(m.events());
        let events = parse_chrome_trace(&json).unwrap();
        let lane = pipe_tid(0);
        assert!(
            events
                .iter()
                .any(|e| e.ph == 'M' && e.tid == lane && e.name == "thread_name"),
            "pipe lane is named"
        );
        let run = events
            .iter()
            .find(|e| e.ph == 'X' && e.name == "s1 chunk 3" && e.tid == lane)
            .expect("pipe run slice");
        assert_eq!((run.ts, run.dur), (1000, Some(600)));
        assert_eq!(m.stats().pipe_stage_runs, 1);
        assert_eq!(m.stats().pipe_chunks, 1);

        // Wait slices come from the context-side hook.
        let mut m = Machine::new(MachineConfig::small())?;
        m.events_mut().set_enabled(true);
        m.offload(0)
            .run(|ctx| {
                let t = ctx.now();
                ctx.pipe_note_wait(2, 5, 400, true);
                ctx.compute(400);
                ctx.pipe_note_wait(2, 6, 100, false);
                ctx.compute(100);
                assert_eq!(ctx.now(), t + 500);
                Ok::<(), SimError>(())
            })?
            .unwrap();
        assert_eq!(m.stats().pipe_backpressure_cycles, 400);
        assert_eq!(m.stats().pipe_input_wait_cycles, 100);
        let json = chrome_trace_json(m.events());
        let events = parse_chrome_trace(&json).unwrap();
        let bp = events
            .iter()
            .find(|e| e.ph == 'X' && e.name == "backpressure" && e.tid == pipe_tid(0))
            .expect("backpressure slice");
        assert_eq!(bp.dur, Some(400));
        assert!(events
            .iter()
            .any(|e| e.ph == 'X' && e.name == "input wait" && e.tid == pipe_tid(0)));
        let report = m.utilization_report();
        assert!(!report.contains("pipeline:"), "no runs -> no pipe section");
        m.pipe_note_run(0, 0, 0, 0, 500);
        m.pipe_note_run(500, 0, 1, 0, 900);
        m.pipe_note_chunk(900, 0);
        assert!(m
            .utilization_report()
            .contains("pipeline: 2 stage runs over 1 chunks"));
        Ok(())
    }

    #[test]
    fn fault_lane_round_trips() {
        use crate::event::CoreId;
        use crate::fault::{FaultKind, RecoveryKind};
        let mut log = EventLog::new();
        log.set_enabled(true);
        log.record(
            100,
            EventKind::FaultInjected {
                accel: 2,
                fault: FaultKind::DmaDrop { tag: 5, bytes: 256 },
            },
        );
        log.record(
            400,
            EventKind::RecoveryApplied {
                accel: 2,
                recovery: RecoveryKind::Retry {
                    tile: 7,
                    attempt: 1,
                    backoff: 200,
                },
            },
        );
        assert!(log.sorted().iter().all(|e| e.core() == CoreId::Accel(2)));
        let json = chrome_trace_json(&log);
        let events = parse_chrome_trace(&json).unwrap();
        let lane = fault_tid(2);
        assert!(
            events
                .iter()
                .any(|e| e.ph == 'M' && e.tid == lane && e.name == "thread_name"),
            "fault lane is named"
        );
        let drop = events
            .iter()
            .find(|e| e.ph == 'i' && e.name == "dma_drop")
            .expect("fault instant");
        assert_eq!((drop.ts, drop.tid), (100, lane));
        let retry = events
            .iter()
            .find(|e| e.ph == 'i' && e.name == "retry")
            .expect("recovery instant");
        assert_eq!((retry.ts, retry.tid), (400, lane));
    }

    #[test]
    fn utilization_report_mentions_faults_only_when_any_fired() -> Result<(), SimError> {
        let m = Machine::new(MachineConfig::small())?;
        assert!(!m.utilization_report().contains("faults:"));
        let mut m = Machine::new(MachineConfig::small())?;
        m.install_fault_plan(crate::fault::FaultPlan::new(9).with_accel_death(1.0));
        let _ = m.offload(0).run(|ctx| ctx.compute(1));
        let report = m.utilization_report();
        assert!(report.contains("faults: 1 injected"));
        assert!(report.contains("1 deaths"));
        assert!(report.contains("recovery: 0 retries"));
        Ok(())
    }

    #[test]
    fn utilization_report_gains_an_imbalance_section_with_sched_tiles() -> Result<(), SimError> {
        let mut m = Machine::new(MachineConfig::small())?;
        let report = m.utilization_report();
        assert!(
            !report.contains("scheduler:"),
            "no sched section by default"
        );
        m.offload(0).run(|ctx| ctx.compute(1000))?;
        m.sched_note_run(0, 0, 0, 1000, None);
        let report = m.utilization_report();
        assert!(report.contains("scheduler: 1 tiles across 1 accels"));
        assert!(report.contains("imbalance 1.00"));
        Ok(())
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{\"traceEvents\":[{\"name\":\"x\"}]}").is_err());
    }
}
