//! The machine's cost model.

use dma::DmaTiming;

/// Cycle costs of the simulated machine's operations.
///
/// All constants live here so experiments can sweep them; the defaults
/// ([`CostModel::cell_like`]) are chosen to match the *relative* shape of
/// a Cell-BE-class machine at games-console clock rates — local store a
/// handful of cycles, cached main memory tens of cycles from the host,
/// and a full DMA round trip hundreds of cycles from an accelerator.
/// Experiments report cycles, never wall time, so only ratios matter.
///
/// # Example
///
/// ```
/// use simcell::CostModel;
///
/// let cost = CostModel::cell_like().with_ls_access(4);
/// assert_eq!(cost.ls_access, 4);
/// assert!(cost.host_mem_access > cost.ls_access);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CostModel {
    /// One arithmetic/logic operation.
    pub arith: u64,
    /// One (taken or not) branch.
    pub branch: u64,
    /// One accelerator access to its local store.
    pub ls_access: u64,
    /// One host access to main memory (through the host cache hierarchy,
    /// amortised).
    pub host_mem_access: u64,
    /// Host-side cost of launching an offload thread.
    pub offload_launch: u64,
    /// Host-side cost of joining an offload thread.
    pub join_overhead: u64,
    /// A direct (non-domain) virtual call: vtable load + indirect branch.
    pub vcall: u64,
    /// Fixed cost of a dispatch-domain lookup (paper Figure 3), before
    /// per-entry search costs.
    pub domain_lookup_base: u64,
    /// Cost per outer-domain entry searched.
    pub domain_outer_entry: u64,
    /// Cost per inner-domain entry searched.
    pub domain_inner_entry: u64,
    /// How much slower a tile runs when degraded to host execution
    /// (recovery fallback): elapsed accelerator-style cycles are
    /// multiplied by this factor on the host clock. The host has no
    /// local store, so every "local" access is really a cached main
    /// memory access and the SIMD-friendly inner loops lose their
    /// width — 3x is the honest games-console ballpark.
    pub host_fallback_factor: u64,
    /// DMA engine timing.
    pub dma: DmaTiming,
}

impl CostModel {
    /// The default Cell-like cost model.
    pub fn cell_like() -> CostModel {
        CostModel {
            arith: 1,
            branch: 2,
            ls_access: 6,
            host_mem_access: 40,
            offload_launch: 1200,
            join_overhead: 300,
            vcall: 12,
            domain_lookup_base: 10,
            domain_outer_entry: 2,
            domain_inner_entry: 2,
            host_fallback_factor: 3,
            dma: DmaTiming::cell_like(),
        }
    }

    /// Replaces the host-fallback slowdown factor.
    #[must_use]
    pub fn with_host_fallback_factor(mut self, factor: u64) -> CostModel {
        self.host_fallback_factor = factor;
        self
    }

    /// Replaces the local-store access cost.
    #[must_use]
    pub fn with_ls_access(mut self, cycles: u64) -> CostModel {
        self.ls_access = cycles;
        self
    }

    /// Replaces the host main-memory access cost.
    #[must_use]
    pub fn with_host_mem_access(mut self, cycles: u64) -> CostModel {
        self.host_mem_access = cycles;
        self
    }

    /// Replaces the offload launch/join overheads.
    #[must_use]
    pub fn with_offload_overheads(mut self, launch: u64, join: u64) -> CostModel {
        self.offload_launch = launch;
        self.join_overhead = join;
        self
    }

    /// Replaces the DMA timing.
    #[must_use]
    pub fn with_dma(mut self, dma: DmaTiming) -> CostModel {
        self.dma = dma;
        self
    }

    /// Cycles for `n` arithmetic operations.
    pub fn arith_n(&self, n: u64) -> u64 {
        self.arith * n
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::cell_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_have_the_right_shape() {
        let c = CostModel::cell_like();
        assert!(c.ls_access < c.host_mem_access);
        // A full DMA round trip dwarfs a local access.
        assert!(c.dma.latency + c.dma.setup > 10 * c.ls_access);
        assert_eq!(CostModel::default(), c);
    }

    #[test]
    fn builders_replace_fields() {
        let c = CostModel::cell_like()
            .with_ls_access(3)
            .with_host_mem_access(55)
            .with_offload_overheads(10, 20)
            .with_host_fallback_factor(5);
        assert_eq!(c.host_fallback_factor, 5);
        assert_eq!(c.ls_access, 3);
        assert_eq!(c.host_mem_access, 55);
        assert_eq!(c.offload_launch, 10);
        assert_eq!(c.join_overhead, 20);
        assert_eq!(c.arith_n(7), 7);
    }
}
