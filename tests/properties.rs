//! Property-based tests over the workspace's core invariants.

use offload_repro::dma::{DmaEngine, Tag};
use offload_repro::memspace::{
    align_up, Addr, AddrRange, MemoryRegion, Pod, SpaceId, SpaceKind,
};
use offload_repro::simcell::{Machine, MachineConfig, SimError};
use offload_repro::softcache::{
    CacheBacking, CacheConfig, SetAssociativeCache, SoftwareCache, WritePolicy,
};
use proptest::prelude::*;

// ---------------------------------------------------------------- memspace

proptest! {
    #[test]
    fn align_up_is_idempotent_and_minimal(offset in 0u32..1_000_000, align in 1u32..512) {
        let aligned = align_up(offset, align);
        prop_assert!(aligned >= offset);
        prop_assert!(aligned - offset < align);
        prop_assert_eq!(aligned % align, 0);
        prop_assert_eq!(align_up(aligned, align), aligned);
    }

    #[test]
    fn pod_scalars_roundtrip(v_u32: u32, v_i64: i64, v_f32: f32, v_bool: bool) {
        let mut buf = [0u8; 8];
        v_u32.write_to(&mut buf);
        prop_assert_eq!(u32::read_from(&buf), v_u32);
        v_i64.write_to(&mut buf);
        prop_assert_eq!(i64::read_from(&buf), v_i64);
        v_f32.write_to(&mut buf);
        let back = f32::read_from(&buf);
        prop_assert_eq!(back.to_bits(), v_f32.to_bits());
        v_bool.write_to(&mut buf);
        prop_assert_eq!(bool::read_from(&buf), v_bool);
    }

    #[test]
    fn region_write_then_read_returns_written_bytes(
        offset in 0u32..3_900,
        data in proptest::collection::vec(any::<u8>(), 1..128),
    ) {
        let mut region = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 4096);
        region.write_bytes(Addr::new(SpaceId::MAIN, offset), &data).unwrap();
        let back = region.read_bytes(Addr::new(SpaceId::MAIN, offset), data.len() as u32).unwrap();
        prop_assert_eq!(back, &data[..]);
    }

    #[test]
    fn range_overlap_is_symmetric_and_matches_brute_force(
        a_start in 0u32..1000, a_len in 0u32..100,
        b_start in 0u32..1000, b_len in 0u32..100,
    ) {
        let a = AddrRange::new(Addr::new(SpaceId::MAIN, a_start), a_len).unwrap();
        let b = AddrRange::new(Addr::new(SpaceId::MAIN, b_start), b_len).unwrap();
        prop_assert_eq!(a.overlaps(b), b.overlaps(a));
        let brute = (a_start..a_start + a_len).any(|x| (b_start..b_start + b_len).contains(&x));
        prop_assert_eq!(a.overlaps(b), brute);
    }

    #[test]
    fn bump_allocator_never_hands_out_overlapping_blocks(
        requests in proptest::collection::vec((1u32..256, prop_oneof![Just(1u32), Just(4), Just(16)]), 1..20),
    ) {
        let mut region = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 64 * 1024);
        let mut blocks: Vec<(u32, u32)> = Vec::new();
        for (size, align) in requests {
            if let Ok(addr) = region.alloc(size, align) {
                prop_assert!(addr.is_aligned_to(align));
                for &(start, len) in &blocks {
                    let disjoint = addr.offset() + size <= start || start + len <= addr.offset();
                    prop_assert!(disjoint, "blocks overlap");
                }
                blocks.push((addr.offset(), size));
            }
        }
    }
}

// ------------------------------------------------------------------- dma

proptest! {
    #[test]
    fn dma_wait_time_is_monotone_and_transfers_are_faithful(
        sizes in proptest::collection::vec(16u32..2048, 1..12),
    ) {
        let mut main = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 64 * 1024);
        let mut ls = MemoryRegion::new(
            SpaceId::local_store(0),
            SpaceKind::LocalStore { accel: 0 },
            64 * 1024,
        );
        let mut engine = DmaEngine::new(SpaceId::local_store(0));
        let tag = Tag::new(0).unwrap();
        let mut now = 0u64;
        let mut remote_off = 16u32;
        for (i, size) in sizes.iter().enumerate() {
            let size = size & !15; // keep transfers aligned
            if size == 0 { continue; }
            let pattern = (i as u8).wrapping_add(1);
            let remote = Addr::new(SpaceId::MAIN, remote_off);
            main.fill(remote, size, pattern).unwrap();
            let local = Addr::new(SpaceId::local_store(0), 1024);
            let after_issue = engine.get(now, local, remote, size, tag, &mut main, &mut ls).unwrap();
            prop_assert!(after_issue >= now);
            let done = engine.wait(tag.mask(), after_issue);
            prop_assert!(done >= after_issue);
            let bytes = ls.read_bytes(local, size).unwrap();
            prop_assert!(bytes.iter().all(|&b| b == pattern));
            now = done;
            remote_off += size;
        }
        prop_assert_eq!(engine.race_checker().detected(), 0);
    }
}

// -------------------------------------------------------------- softcache

/// Cache operations for the oracle test.
#[derive(Clone, Debug)]
enum CacheOp {
    Read { offset: u32, len: u8 },
    Write { offset: u32, value: u8, len: u8 },
    Flush,
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0u32..4000, 1u8..16).prop_map(|(offset, len)| CacheOp::Read { offset, len }),
        (0u32..4000, any::<u8>(), 1u8..16)
            .prop_map(|(offset, value, len)| CacheOp::Write { offset, value, len }),
        Just(CacheOp::Flush),
    ]
}

/// Runs a random operation sequence through a software cache and a
/// plain mirror array; after a final flush, simulated main memory must
/// equal the mirror, and every read must have returned mirror contents.
fn cache_oracle(config: CacheConfig, ops: Vec<CacheOp>) -> Result<(), TestCaseError> {
    let mut main = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 4096);
    let mut ls = MemoryRegion::new(
        SpaceId::local_store(0),
        SpaceKind::LocalStore { accel: 0 },
        256 * 1024,
    );
    let mut engine = DmaEngine::new(SpaceId::local_store(0));
    let mut cache = SetAssociativeCache::new(config, SpaceId::MAIN, &mut ls).unwrap();
    let mut mirror = vec![0u8; 4096];
    let mut now = 0u64;

    for op in ops {
        let mut backing = CacheBacking {
            main: &mut main,
            ls: &mut ls,
            dma: &mut engine,
        };
        match op {
            CacheOp::Read { offset, len } => {
                let len = len as usize;
                if offset as usize + len > 4096 {
                    continue;
                }
                let mut buf = vec![0u8; len];
                now = cache
                    .read(now, Addr::new(SpaceId::MAIN, offset), &mut buf, &mut backing)
                    .unwrap();
                prop_assert_eq!(&buf[..], &mirror[offset as usize..offset as usize + len]);
            }
            CacheOp::Write { offset, value, len } => {
                let len = len as usize;
                if offset as usize + len > 4096 {
                    continue;
                }
                let data = vec![value; len];
                now = cache
                    .write(now, Addr::new(SpaceId::MAIN, offset), &data, &mut backing)
                    .unwrap();
                mirror[offset as usize..offset as usize + len].fill(value);
            }
            CacheOp::Flush => {
                now = cache.flush(now, &mut backing).unwrap();
            }
        }
    }
    let mut backing = CacheBacking {
        main: &mut main,
        ls: &mut ls,
        dma: &mut engine,
    };
    cache.flush(now, &mut backing).unwrap();
    let stored = main
        .read_bytes(Addr::new(SpaceId::MAIN, 0), 4096)
        .unwrap()
        .to_vec();
    prop_assert_eq!(stored, mirror);
    prop_assert_eq!(engine.race_checker().detected(), 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_back_cache_is_a_transparent_memory(ops in proptest::collection::vec(cache_op(), 1..60)) {
        cache_oracle(CacheConfig::new(64, 8, 2), ops)?;
    }

    #[test]
    fn write_through_cache_is_a_transparent_memory(ops in proptest::collection::vec(cache_op(), 1..60)) {
        cache_oracle(
            CacheConfig::new(32, 4, 1).write_policy(WritePolicy::WriteThrough),
            ops,
        )?;
    }
}

// ------------------------------------------------------------- offload-rt

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn chunked_and_streamed_processing_agree(
        len in 1u32..600,
        chunk in 1u32..128,
        seed in any::<u32>(),
    ) {
        use offload_repro::offload_rt::{process_chunked, process_stream, StreamConfig};

        let build = || {
            let mut machine = Machine::new(MachineConfig::small()).unwrap();
            let remote = machine.alloc_main_slice::<u32>(len).unwrap();
            let values: Vec<u32> = (0..len).map(|i| i.wrapping_mul(seed)).collect();
            machine.main_mut().write_pod_slice(remote, &values).unwrap();
            (machine, remote)
        };
        let config = StreamConfig { chunk_elems: chunk, write_back: true };
        let work = |_: &mut offload_repro::simcell::AccelCtx<'_>, base: u32, data: &mut [u32]| {
            for (i, v) in data.iter_mut().enumerate() {
                *v = v.wrapping_add(base + i as u32);
            }
            Ok::<(), SimError>(())
        };

        let (mut m1, r1) = build();
        m1.run_offload(0, |ctx| process_chunked::<u32, _>(ctx, r1, len, config, work))
            .unwrap()
            .unwrap();
        let chunked = m1.main().read_pod_slice::<u32>(r1, len).unwrap();

        let (mut m2, r2) = build();
        m2.run_offload(0, |ctx| process_stream::<u32, _>(ctx, r2, len, config, work))
            .unwrap()
            .unwrap();
        let streamed = m2.main().read_pod_slice::<u32>(r2, len).unwrap();

        prop_assert_eq!(chunked, streamed);
        prop_assert_eq!(m2.races_detected(), 0);
    }
}

// ------------------------------------------------------------ offload-lang

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_arithmetic_matches_rust_semantics(a in -1000i32..1000, b in -1000i32..1000, c in 1i32..50) {
        use offload_repro::offload_lang::{compile, Target, Vm};
        let source = format!(
            "fn main() -> int {{ return ({a} + {b}) * 3 - {a} / {c} + {b} % {c}; }}"
        );
        let expected = (a + b) * 3 - a / c + b % c;
        let program = compile(&source, &Target::cell_like()).unwrap();
        let mut machine = Machine::new(MachineConfig::small()).unwrap();
        let mut vm = Vm::new(&program, &mut machine).unwrap();
        prop_assert_eq!(vm.run(&mut machine).unwrap(), expected);
    }

    #[test]
    fn offloaded_and_host_loops_compute_identically(n in 1u32..64, mult in 1i32..9) {
        use offload_repro::offload_lang::{compile, Target, Vm};
        let host_src = format!(
            r#"
            var acc: int;
            fn main() -> int {{
                let i: int = 0;
                while i < {n} {{ acc = acc + i * {mult}; i = i + 1; }}
                return acc;
            }}
            "#
        );
        let offl_src = format!(
            r#"
            var acc: int;
            fn main() -> int {{
                offload {{
                    let i: int = 0;
                    let local_acc: int = 0;
                    while i < {n} {{ local_acc = local_acc + i * {mult}; i = i + 1; }}
                    acc = local_acc;
                }}
                return acc;
            }}
            "#
        );
        let target = Target::cell_like();
        let run = |src: &str| {
            let program = compile(src, &target).unwrap();
            let mut machine = Machine::new(MachineConfig::small()).unwrap();
            let mut vm = Vm::new(&program, &mut machine).unwrap();
            vm.run(&mut machine).unwrap()
        };
        prop_assert_eq!(run(&host_src), run(&offl_src));
    }
}

/// Oracle test for the streaming cache: any mix of reads and (uncached,
/// synchronous) writes behaves like plain memory.
fn stream_oracle(ops: Vec<CacheOp>) -> Result<(), TestCaseError> {
    use offload_repro::softcache::StreamCache;

    let mut main = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 4096);
    let mut ls = MemoryRegion::new(
        SpaceId::local_store(0),
        SpaceKind::LocalStore { accel: 0 },
        256 * 1024,
    );
    let mut engine = DmaEngine::new(SpaceId::local_store(0));
    let mut cache = StreamCache::new(CacheConfig::new(256, 1, 1), SpaceId::MAIN, &mut ls).unwrap();
    let mut mirror = vec![0u8; 4096];
    let mut now = 0u64;

    for op in ops {
        let mut backing = CacheBacking {
            main: &mut main,
            ls: &mut ls,
            dma: &mut engine,
        };
        match op {
            CacheOp::Read { offset, len } => {
                let len = len as usize;
                if offset as usize + len > 4096 {
                    continue;
                }
                let mut buf = vec![0u8; len];
                now = cache
                    .read(now, Addr::new(SpaceId::MAIN, offset), &mut buf, &mut backing)
                    .unwrap();
                prop_assert_eq!(&buf[..], &mirror[offset as usize..offset as usize + len]);
            }
            CacheOp::Write { offset, value, len } => {
                let len = len as usize;
                if offset as usize + len > 4096 {
                    continue;
                }
                let data = vec![value; len];
                now = cache
                    .write(now, Addr::new(SpaceId::MAIN, offset), &data, &mut backing)
                    .unwrap();
                mirror[offset as usize..offset as usize + len].fill(value);
            }
            CacheOp::Flush => {
                now = cache.flush(now, &mut backing).unwrap();
            }
        }
    }
    let mut backing = CacheBacking {
        main: &mut main,
        ls: &mut ls,
        dma: &mut engine,
    };
    cache.flush(now, &mut backing).unwrap();
    let stored = main
        .read_bytes(Addr::new(SpaceId::MAIN, 0), 4096)
        .unwrap()
        .to_vec();
    prop_assert_eq!(stored, mirror);
    prop_assert_eq!(engine.race_checker().detected(), 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stream_cache_is_a_transparent_memory(ops in proptest::collection::vec(cache_op(), 1..60)) {
        stream_oracle(ops)?;
    }

    #[test]
    fn array_accessor_matches_direct_memory(
        len in 1u32..512,
        writes in proptest::collection::vec((0u32..512, any::<u32>()), 0..40),
    ) {
        use offload_repro::offload_rt::ArrayAccessor;
        let mut machine = Machine::new(MachineConfig::small()).unwrap();
        let remote = machine.alloc_main_slice::<u32>(len).unwrap();
        let initial: Vec<u32> = (0..len).map(|i| i ^ 0xa5a5).collect();
        machine.main_mut().write_pod_slice(remote, &initial).unwrap();

        let mut mirror = initial.clone();
        let writes2 = writes.clone();
        machine
            .run_offload(0, move |ctx| -> Result<(), SimError> {
                let mut array = ArrayAccessor::<u32>::fetch(ctx, remote, len)?;
                for (index, value) in writes2 {
                    if index < len {
                        array.set(ctx, index, &value)?;
                    }
                }
                array.write_back(ctx)
            })
            .unwrap()
            .unwrap();
        for (index, value) in writes {
            if index < len {
                mirror[index as usize] = value;
            }
        }
        prop_assert_eq!(
            machine.main().read_pod_slice::<u32>(remote, len).unwrap(),
            mirror
        );
        prop_assert_eq!(machine.races_detected(), 0);
    }
}
