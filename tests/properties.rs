//! Property-style tests over the workspace's core invariants.
//!
//! Each test drives its oracle with a few hundred cases drawn from the
//! in-repo seeded [`xrng`] generator instead of an external property
//! testing framework: the workspace must build and test with no network
//! access, and deterministic cases make failures trivially repeatable
//! (the failing seed is the constant in the test).

use offload_repro::dma::{DmaEngine, Tag};
use offload_repro::memspace::{align_up, Addr, AddrRange, MemoryRegion, Pod, SpaceId, SpaceKind};
use offload_repro::simcell::{Machine, MachineConfig, SimError};
use offload_repro::softcache::{
    CacheBacking, CacheConfig, SetAssociativeCache, SoftwareCache, WritePolicy,
};
use xrng::Rng;

// ---------------------------------------------------------------- memspace

#[test]
fn align_up_is_idempotent_and_minimal() {
    let mut rng = Rng::new(0xA11);
    for _ in 0..2000 {
        let offset = rng.below_u32(1_000_000);
        let align = rng.range_u32(1, 512);
        let aligned = align_up(offset, align);
        assert!(aligned >= offset);
        assert!(aligned - offset < align);
        assert_eq!(aligned % align, 0);
        assert_eq!(align_up(aligned, align), aligned);
    }
}

#[test]
fn pod_scalars_roundtrip() {
    let mut rng = Rng::new(0x50d);
    for _ in 0..2000 {
        let v_u32 = rng.next_u32();
        let v_i64 = rng.next_u64() as i64;
        let v_f32 = f32::from_bits(rng.next_u32());
        let v_bool = rng.next_u32() & 1 == 1;
        let mut buf = [0u8; 8];
        v_u32.write_to(&mut buf);
        assert_eq!(u32::read_from(&buf), v_u32);
        v_i64.write_to(&mut buf);
        assert_eq!(i64::read_from(&buf), v_i64);
        v_f32.write_to(&mut buf);
        assert_eq!(f32::read_from(&buf).to_bits(), v_f32.to_bits());
        v_bool.write_to(&mut buf);
        assert_eq!(bool::read_from(&buf), v_bool);
    }
}

#[test]
fn region_write_then_read_returns_written_bytes() {
    let mut rng = Rng::new(0x12E6);
    for _ in 0..500 {
        let offset = rng.below_u32(3_900);
        let len = rng.range_u32(1, 128) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
        let mut region = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 4096);
        region
            .write_bytes(Addr::new(SpaceId::MAIN, offset), &data)
            .unwrap();
        let back = region
            .read_bytes(Addr::new(SpaceId::MAIN, offset), data.len() as u32)
            .unwrap();
        assert_eq!(back, &data[..]);
    }
}

#[test]
fn range_overlap_is_symmetric_and_matches_brute_force() {
    let mut rng = Rng::new(0x0E7A);
    for _ in 0..2000 {
        let a_start = rng.below_u32(1000);
        let a_len = rng.below_u32(100);
        let b_start = rng.below_u32(1000);
        let b_len = rng.below_u32(100);
        let a = AddrRange::new(Addr::new(SpaceId::MAIN, a_start), a_len).unwrap();
        let b = AddrRange::new(Addr::new(SpaceId::MAIN, b_start), b_len).unwrap();
        assert_eq!(a.overlaps(b), b.overlaps(a));
        let brute = (a_start..a_start + a_len).any(|x| (b_start..b_start + b_len).contains(&x));
        assert_eq!(a.overlaps(b), brute);
    }
}

#[test]
fn bump_allocator_never_hands_out_overlapping_blocks() {
    let mut rng = Rng::new(0xB0B);
    for _ in 0..200 {
        let mut region = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 64 * 1024);
        let mut blocks: Vec<(u32, u32)> = Vec::new();
        let count = rng.range_u32(1, 20);
        for _ in 0..count {
            let size = rng.range_u32(1, 256);
            let align = [1u32, 4, 16][rng.below_u32(3) as usize];
            if let Ok(addr) = region.alloc(size, align) {
                assert!(addr.is_aligned_to(align));
                for &(start, len) in &blocks {
                    let disjoint = addr.offset() + size <= start || start + len <= addr.offset();
                    assert!(disjoint, "blocks overlap");
                }
                blocks.push((addr.offset(), size));
            }
        }
    }
}

// ------------------------------------------------------------------- dma

#[test]
fn dma_wait_time_is_monotone_and_transfers_are_faithful() {
    let mut rng = Rng::new(0xD3A);
    for _ in 0..100 {
        let mut main = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 64 * 1024);
        let mut ls = MemoryRegion::new(
            SpaceId::local_store(0),
            SpaceKind::LocalStore { accel: 0 },
            64 * 1024,
        );
        let mut engine = DmaEngine::new(SpaceId::local_store(0));
        let tag = Tag::new(0).unwrap();
        let mut now = 0u64;
        let mut remote_off = 16u32;
        let transfers = rng.range_u32(1, 12);
        for i in 0..transfers {
            let size = rng.range_u32(16, 2048) & !15; // keep transfers aligned
            if size == 0 || remote_off + size > 60 * 1024 {
                continue;
            }
            let pattern = (i as u8).wrapping_add(1);
            let remote = Addr::new(SpaceId::MAIN, remote_off);
            main.fill(remote, size, pattern).unwrap();
            let local = Addr::new(SpaceId::local_store(0), 1024);
            let after_issue = engine
                .get(now, local, remote, size, tag, &mut main, &mut ls)
                .unwrap();
            assert!(after_issue >= now);
            let done = engine.wait(tag.mask(), after_issue);
            assert!(done >= after_issue);
            let bytes = ls.read_bytes(local, size).unwrap();
            assert!(bytes.iter().all(|&b| b == pattern));
            now = done;
            remote_off += size;
        }
        assert_eq!(engine.race_checker().detected(), 0);
    }
}

// -------------------------------------------------------------- softcache

/// Cache operations for the oracle tests.
#[derive(Clone, Debug)]
enum CacheOp {
    Read { offset: u32, len: u8 },
    Write { offset: u32, value: u8, len: u8 },
    Flush,
}

fn random_op(rng: &mut Rng) -> CacheOp {
    match rng.below_u32(3) {
        0 => CacheOp::Read {
            offset: rng.below_u32(4000),
            len: rng.range_u32(1, 16) as u8,
        },
        1 => CacheOp::Write {
            offset: rng.below_u32(4000),
            value: rng.next_u32() as u8,
            len: rng.range_u32(1, 16) as u8,
        },
        _ => CacheOp::Flush,
    }
}

fn random_ops(rng: &mut Rng, max: u32) -> Vec<CacheOp> {
    let count = rng.range_u32(1, max);
    (0..count).map(|_| random_op(rng)).collect()
}

/// Runs a random operation sequence through a software cache and a
/// plain mirror array; after a final flush, simulated main memory must
/// equal the mirror, and every read must have returned mirror contents.
fn cache_oracle(config: CacheConfig, ops: Vec<CacheOp>) {
    let mut main = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 4096);
    let mut ls = MemoryRegion::new(
        SpaceId::local_store(0),
        SpaceKind::LocalStore { accel: 0 },
        256 * 1024,
    );
    let mut engine = DmaEngine::new(SpaceId::local_store(0));
    let mut cache = SetAssociativeCache::new(config, SpaceId::MAIN, &mut ls).unwrap();
    let mut mirror = vec![0u8; 4096];
    let mut now = 0u64;

    for op in ops {
        let mut backing = CacheBacking {
            main: &mut main,
            ls: &mut ls,
            dma: &mut engine,
        };
        match op {
            CacheOp::Read { offset, len } => {
                let len = len as usize;
                if offset as usize + len > 4096 {
                    continue;
                }
                let mut buf = vec![0u8; len];
                now = cache
                    .read(
                        now,
                        Addr::new(SpaceId::MAIN, offset),
                        &mut buf,
                        &mut backing,
                    )
                    .unwrap();
                assert_eq!(&buf[..], &mirror[offset as usize..offset as usize + len]);
            }
            CacheOp::Write { offset, value, len } => {
                let len = len as usize;
                if offset as usize + len > 4096 {
                    continue;
                }
                let data = vec![value; len];
                now = cache
                    .write(now, Addr::new(SpaceId::MAIN, offset), &data, &mut backing)
                    .unwrap();
                mirror[offset as usize..offset as usize + len].fill(value);
            }
            CacheOp::Flush => {
                now = cache.flush(now, &mut backing).unwrap();
            }
        }
    }
    let mut backing = CacheBacking {
        main: &mut main,
        ls: &mut ls,
        dma: &mut engine,
    };
    cache.flush(now, &mut backing).unwrap();
    let stored = main
        .read_bytes(Addr::new(SpaceId::MAIN, 0), 4096)
        .unwrap()
        .to_vec();
    assert_eq!(stored, mirror);
    assert_eq!(engine.race_checker().detected(), 0);
}

#[test]
fn write_back_cache_is_a_transparent_memory() {
    let mut rng = Rng::new(0xCACE);
    for _ in 0..64 {
        cache_oracle(CacheConfig::new(64, 8, 2), random_ops(&mut rng, 60));
    }
}

#[test]
fn write_through_cache_is_a_transparent_memory() {
    let mut rng = Rng::new(0x77CE);
    for _ in 0..64 {
        cache_oracle(
            CacheConfig::new(32, 4, 1).write_policy(WritePolicy::WriteThrough),
            random_ops(&mut rng, 60),
        );
    }
}

// ------------------------------------------------------------- offload-rt

#[test]
fn chunked_and_streamed_processing_agree() {
    use offload_repro::offload_rt::{process_chunked, process_stream, StreamConfig};

    let mut rng = Rng::new(0x57E4);
    for _ in 0..32 {
        let len = rng.range_u32(1, 600);
        let chunk = rng.range_u32(1, 128);
        let seed = rng.next_u32();

        let build = || {
            let mut machine = Machine::new(MachineConfig::small()).unwrap();
            let remote = machine.alloc_main_slice::<u32>(len).unwrap();
            let values: Vec<u32> = (0..len).map(|i| i.wrapping_mul(seed)).collect();
            machine.main_mut().write_pod_slice(remote, &values).unwrap();
            (machine, remote)
        };
        let config = StreamConfig {
            chunk_elems: chunk,
            write_back: true,
        };
        let work = |_: &mut offload_repro::simcell::AccelCtx<'_>, base: u32, data: &mut [u32]| {
            for (i, v) in data.iter_mut().enumerate() {
                *v = v.wrapping_add(base + i as u32);
            }
            Ok::<(), SimError>(())
        };

        let (mut m1, r1) = build();
        m1.offload(0)
            .run(|ctx| process_chunked::<u32, _>(ctx, r1, len, config, work))
            .unwrap()
            .unwrap();
        let chunked = m1.main().read_pod_slice::<u32>(r1, len).unwrap();

        let (mut m2, r2) = build();
        m2.offload(0)
            .run(|ctx| process_stream::<u32, _>(ctx, r2, len, config, work))
            .unwrap()
            .unwrap();
        let streamed = m2.main().read_pod_slice::<u32>(r2, len).unwrap();

        assert_eq!(chunked, streamed);
        assert_eq!(m2.races_detected(), 0);
    }
}

// ----------------------------------------------------------------- fault

/// One traced recovering frame: the Chrome trace JSON (fault schedule
/// and recovery instants included), the final world, and the report's
/// (cycles, faults) pair — everything the determinism property pins.
fn recovering_run(
    seed: u64,
    rate: f32,
    policy: offload_repro::offload_rt::sched::SchedPolicy,
) -> (String, Vec<offload_repro::gamekit::GameEntity>, u64, u64) {
    use offload_repro::gamekit::{ai_frame_sched_recovering, AiConfig, EntityArray, WorldGen};
    use offload_repro::simcell::{chrome_trace_json, FaultPlan};

    let n = 256;
    let config = AiConfig::default();
    let mut machine = Machine::new(MachineConfig::default()).unwrap();
    machine.events_mut().set_enabled(true);
    let entities = EntityArray::alloc(&mut machine, n).unwrap();
    let mut gen = WorldGen::new(0xF0_0D);
    gen.populate(&mut machine, &entities, 70.0).unwrap();
    let table = gen
        .candidate_table(&mut machine, n, config.candidates)
        .unwrap();
    let report = ai_frame_sched_recovering(
        &mut machine,
        &entities,
        table,
        &config,
        4,
        8,
        policy,
        FaultPlan::uniform(seed, rate),
        3,
        1_000,
    )
    .unwrap();
    assert_eq!(machine.races_detected(), 0);
    let world = entities.snapshot(&machine).unwrap();
    let trace = chrome_trace_json(machine.events());
    (trace, world, report.cycles, report.faults)
}

/// The tentpole determinism property: an identical `FaultPlan` seed
/// produces a bit-identical fault schedule, recovery trace, and final
/// world state — across random seeds, rates, and all three scheduler
/// policies.
#[test]
fn identical_fault_seeds_reproduce_schedule_trace_and_world_bit_identically() {
    use offload_repro::offload_rt::sched::SchedPolicy;

    let mut rng = Rng::new(0xFA_17);
    let mut injected_somewhere = false;
    for case in 0..12 {
        let seed = rng.next_u64();
        let rate = rng.range_u32(1, 11) as f32 / 100.0;
        let policy = [
            SchedPolicy::Static,
            SchedPolicy::ShortestQueue,
            SchedPolicy::WorkStealing,
        ][rng.below_u32(3) as usize];
        let a = recovering_run(seed, rate, policy);
        let b = recovering_run(seed, rate, policy);
        assert_eq!(a.0, b.0, "case {case}: trace JSON diverged");
        assert_eq!(a.1, b.1, "case {case}: world diverged");
        assert_eq!(a.2, b.2, "case {case}: cycles diverged");
        assert_eq!(a.3, b.3, "case {case}: fault counts diverged");
        injected_somewhere |= a.3 > 0;
    }
    assert!(
        injected_somewhere,
        "twelve random plans must inject at least once"
    );
}

/// Different seeds at the same rate must not replay the same schedule —
/// the plan's RNG stream, not the rate, decides where faults land.
#[test]
fn different_fault_seeds_produce_different_schedules() {
    use offload_repro::offload_rt::sched::SchedPolicy;

    let a = recovering_run(0xA, 0.05, SchedPolicy::WorkStealing);
    let b = recovering_run(0xB, 0.05, SchedPolicy::WorkStealing);
    assert_ne!(a.0, b.0, "seeds 0xA and 0xB replayed the same trace");
    // Both recover to the same world regardless of where faults landed.
    assert_eq!(a.1, b.1);
}

/// DMA edge case: a tag timeout with commands genuinely in flight
/// stalls the clock and leaves a sticky fault, but the transfer's bytes
/// still land — the timeout models a late completion, not a lost one.
#[test]
fn tag_timeout_on_an_in_flight_tag_is_sticky_and_loses_no_data() {
    use offload_repro::dma::Tag;
    use offload_repro::simcell::{FaultError, FaultPlan};

    let mut machine = Machine::new(MachineConfig::small()).unwrap();
    let remote = machine.alloc_main_slice::<u32>(64).unwrap();
    let values: Vec<u32> = (0..64).map(|i| i * 3 + 7).collect();
    machine.main_mut().write_pod_slice(remote, &values).unwrap();
    let expected = values.clone();
    machine
        .offload(0)
        .faults(FaultPlan::new(1).with_tag_timeout(1.0))
        .run(move |ctx| -> Result<(), SimError> {
            let local = ctx.alloc_local(256, 16)?;
            let tag = Tag::new(2).unwrap();
            ctx.dma_get(local, remote, 256, tag)?;
            let before = ctx.now();
            ctx.dma_wait_tag(tag);
            assert!(ctx.now() > before, "a hit timeout must stall the clock");
            // The sticky fault surfaces on the next fallible operation…
            let err = ctx.check_faults().unwrap_err();
            assert!(matches!(
                err,
                SimError::Fault(FaultError::TagTimeout { accel: 0, .. })
            ));
            // …then clears, and the data arrived intact anyway.
            assert!(ctx.take_fault().is_none());
            ctx.check_faults()?;
            let got = ctx.local_read_slice::<u32>(local, 64)?;
            assert_eq!(got, expected);
            Ok(())
        })
        .unwrap()
        .unwrap();
    assert_eq!(machine.races_detected(), 0);
    assert!(machine.stats().faults_injected >= 1);
}

/// DMA edge case: a transfer fault on one tag while another tag's
/// transfer is in flight neither damages the clean tag's data nor
/// confuses the race checker — the faulted command still completes and
/// retires like any other.
#[test]
fn transfer_fault_beside_an_in_flight_tag_leaves_the_clean_tag_intact() {
    use offload_repro::dma::Tag;
    use offload_repro::simcell::{FaultError, FaultPlan};

    // Seed 0 makes the plan's first per-transfer roll miss and the
    // second hit at rate 0.5: tag 1's get is clean, tag 2's corrupts.
    let seed = 0;
    let mut machine = Machine::new(MachineConfig::small()).unwrap();
    let remote = machine.alloc_main_slice::<u32>(128).unwrap();
    let values: Vec<u32> = (0..128).map(|i| i ^ 0x5a5a).collect();
    machine.main_mut().write_pod_slice(remote, &values).unwrap();
    let clean_half = values[..64].to_vec();
    machine
        .offload(0)
        .faults(FaultPlan::new(seed).with_dma_corrupt(0.5))
        .run(move |ctx| -> Result<(), SimError> {
            let a = ctx.alloc_local(256, 16)?;
            let b = ctx.alloc_local(256, 16)?;
            ctx.dma_get(a, remote, 256, Tag::new(1).unwrap())?;
            // Tag 1 is still in flight when tag 2's transfer faults.
            let err = ctx
                .dma_get(b, remote.offset_by(256)?, 256, Tag::new(2).unwrap())
                .unwrap_err();
            assert!(matches!(
                err,
                SimError::Fault(FaultError::DmaCorrupted {
                    accel: 0,
                    tag: 2,
                    ..
                })
            ));
            ctx.dma_wait_all();
            ctx.take_fault();
            let got = ctx.local_read_slice::<u32>(a, 64)?;
            assert_eq!(got, clean_half, "the clean tag's bytes must land intact");
            Ok(())
        })
        .unwrap()
        .unwrap();
    assert_eq!(machine.races_detected(), 0);
}

// ------------------------------------------------------------ offload-lang

#[test]
fn compiled_arithmetic_matches_rust_semantics() {
    use offload_repro::offload_lang::{compile, Target, Vm};

    let mut rng = Rng::new(0xA417);
    for _ in 0..48 {
        let a = rng.below_u32(2000) as i32 - 1000;
        let b = rng.below_u32(2000) as i32 - 1000;
        let c = rng.range_u32(1, 50) as i32;
        let source =
            format!("fn main() -> int {{ return ({a} + {b}) * 3 - {a} / {c} + {b} % {c}; }}");
        let expected = (a + b) * 3 - a / c + b % c;
        let program = compile(&source, &Target::cell_like()).unwrap();
        let mut machine = Machine::new(MachineConfig::small()).unwrap();
        let mut vm = Vm::new(&program, &mut machine).unwrap();
        assert_eq!(vm.run(&mut machine).unwrap(), expected);
    }
}

#[test]
fn offloaded_and_host_loops_compute_identically() {
    use offload_repro::offload_lang::{compile, Target, Vm};

    let mut rng = Rng::new(0x100F);
    for _ in 0..24 {
        let n = rng.range_u32(1, 64);
        let mult = rng.range_u32(1, 9) as i32;
        let host_src = format!(
            r#"
            var acc: int;
            fn main() -> int {{
                let i: int = 0;
                while i < {n} {{ acc = acc + i * {mult}; i = i + 1; }}
                return acc;
            }}
            "#
        );
        let offl_src = format!(
            r#"
            var acc: int;
            fn main() -> int {{
                offload {{
                    let i: int = 0;
                    let local_acc: int = 0;
                    while i < {n} {{ local_acc = local_acc + i * {mult}; i = i + 1; }}
                    acc = local_acc;
                }}
                return acc;
            }}
            "#
        );
        let target = Target::cell_like();
        let run = |src: &str| {
            let program = compile(src, &target).unwrap();
            let mut machine = Machine::new(MachineConfig::small()).unwrap();
            let mut vm = Vm::new(&program, &mut machine).unwrap();
            vm.run(&mut machine).unwrap()
        };
        assert_eq!(run(&host_src), run(&offl_src));
    }
}

/// Oracle test for the streaming cache: any mix of reads and (uncached,
/// synchronous) writes behaves like plain memory.
fn stream_oracle(ops: Vec<CacheOp>) {
    use offload_repro::softcache::StreamCache;

    let mut main = MemoryRegion::new(SpaceId::MAIN, SpaceKind::Main, 4096);
    let mut ls = MemoryRegion::new(
        SpaceId::local_store(0),
        SpaceKind::LocalStore { accel: 0 },
        256 * 1024,
    );
    let mut engine = DmaEngine::new(SpaceId::local_store(0));
    let mut cache = StreamCache::new(CacheConfig::new(256, 1, 1), SpaceId::MAIN, &mut ls).unwrap();
    let mut mirror = vec![0u8; 4096];
    let mut now = 0u64;

    for op in ops {
        let mut backing = CacheBacking {
            main: &mut main,
            ls: &mut ls,
            dma: &mut engine,
        };
        match op {
            CacheOp::Read { offset, len } => {
                let len = len as usize;
                if offset as usize + len > 4096 {
                    continue;
                }
                let mut buf = vec![0u8; len];
                now = cache
                    .read(
                        now,
                        Addr::new(SpaceId::MAIN, offset),
                        &mut buf,
                        &mut backing,
                    )
                    .unwrap();
                assert_eq!(&buf[..], &mirror[offset as usize..offset as usize + len]);
            }
            CacheOp::Write { offset, value, len } => {
                let len = len as usize;
                if offset as usize + len > 4096 {
                    continue;
                }
                let data = vec![value; len];
                now = cache
                    .write(now, Addr::new(SpaceId::MAIN, offset), &data, &mut backing)
                    .unwrap();
                mirror[offset as usize..offset as usize + len].fill(value);
            }
            CacheOp::Flush => {
                now = cache.flush(now, &mut backing).unwrap();
            }
        }
    }
    let mut backing = CacheBacking {
        main: &mut main,
        ls: &mut ls,
        dma: &mut engine,
    };
    cache.flush(now, &mut backing).unwrap();
    let stored = main
        .read_bytes(Addr::new(SpaceId::MAIN, 0), 4096)
        .unwrap()
        .to_vec();
    assert_eq!(stored, mirror);
    assert_eq!(engine.race_checker().detected(), 0);
}

#[test]
fn stream_cache_is_a_transparent_memory() {
    let mut rng = Rng::new(0x57CE);
    for _ in 0..48 {
        stream_oracle(random_ops(&mut rng, 60));
    }
}

#[test]
fn array_accessor_matches_direct_memory() {
    use offload_repro::offload_rt::ArrayAccessor;

    let mut rng = Rng::new(0xACC);
    for _ in 0..32 {
        let len = rng.range_u32(1, 512);
        let write_count = rng.below_u32(40);
        let writes: Vec<(u32, u32)> = (0..write_count)
            .map(|_| (rng.below_u32(512), rng.next_u32()))
            .collect();

        let mut machine = Machine::new(MachineConfig::small()).unwrap();
        let remote = machine.alloc_main_slice::<u32>(len).unwrap();
        let initial: Vec<u32> = (0..len).map(|i| i ^ 0xa5a5).collect();
        machine
            .main_mut()
            .write_pod_slice(remote, &initial)
            .unwrap();

        let mut mirror = initial.clone();
        let writes2 = writes.clone();
        machine
            .offload(0)
            .run(move |ctx| -> Result<(), SimError> {
                let mut array = ArrayAccessor::<u32>::fetch(ctx, remote, len)?;
                for (index, value) in writes2 {
                    if index < len {
                        array.set(ctx, index, &value)?;
                    }
                }
                array.write_back(ctx)
            })
            .unwrap()
            .unwrap();
        for (index, value) in writes {
            if index < len {
                mirror[index as usize] = value;
            }
        }
        assert_eq!(
            machine.main().read_pod_slice::<u32>(remote, len).unwrap(),
            mirror
        );
        assert_eq!(machine.races_detected(), 0);
    }
}
