//! Cross-crate integration tests: the whole stack working together.

use offload_repro::gamekit::{
    run_frame, AiConfig, ComponentSystem, EntityArray, FrameSchedule, WorldGen,
};
use offload_repro::offload_lang::{compile, OffloadCachePolicy, Target, Vm};
use offload_repro::offload_rt::ArrayAccessor;
use offload_repro::simcell::{Machine, MachineConfig, SimError};
use offload_repro::softcache::CacheConfig;

#[test]
fn simulation_is_deterministic_across_runs() {
    let run = || -> (u64, Vec<offload_repro::gamekit::GameEntity>) {
        let mut machine = Machine::new(MachineConfig::default()).unwrap();
        let entities = EntityArray::alloc(&mut machine, 512).unwrap();
        let mut gen = WorldGen::new(77);
        gen.populate(&mut machine, &entities, 50.0).unwrap();
        let table = gen
            .candidate_table(&mut machine, 512, AiConfig::default().candidates)
            .unwrap();
        for _ in 0..3 {
            run_frame(
                &mut machine,
                &entities,
                table,
                &AiConfig::default(),
                FrameSchedule::Offloaded { accel: 0 },
            )
            .unwrap();
        }
        (machine.host_now(), entities.snapshot(&machine).unwrap())
    };
    let (cycles_a, world_a) = run();
    let (cycles_b, world_b) = run();
    assert_eq!(cycles_a, cycles_b, "cycle counts are bit-reproducible");
    assert_eq!(world_a, world_b, "world state is bit-reproducible");
}

#[test]
fn language_and_runtime_share_one_machine() {
    // A compiled Offload/Mini program and hand-written runtime code
    // interleave on the same simulated machine and memory.
    let source = r#"
        var total: int;
        fn main() -> int {
            offload { total = total + 40; }
            return total;
        }
    "#;
    let program = compile(source, &Target::cell_like()).unwrap();
    let mut machine = Machine::new(MachineConfig::default()).unwrap();
    let mut vm = Vm::new(&program, &mut machine).unwrap();

    // Runtime-level offload first, writing into main memory the VM will
    // see indirectly through its own globals (disjoint allocations).
    let scratch = machine.alloc_main_slice::<u32>(64).unwrap();
    machine
        .offload(0)
        .run(|ctx| -> Result<(), SimError> {
            let mut array = ArrayAccessor::<u32>::for_output(ctx, scratch, 64)?;
            array.copy_from_slice(ctx, &[2u32; 64])?;
            array.write_back(ctx)
        })
        .unwrap()
        .unwrap();

    // `total` starts at 0 (globals are zeroed); hand-poke it to 2 via
    // cost-free setup access to prove the memories are shared.
    let exit = vm.run(&mut machine).unwrap();
    assert_eq!(exit, 40);
    assert_eq!(machine.main().read_pod::<u32>(scratch).unwrap(), 2);
    assert_eq!(machine.races_detected(), 0);
}

#[test]
fn thirteen_specialised_offloads_round_robin_across_accelerators() {
    // The component systems also work when offloads are spread over the
    // machine's six accelerators (each kind still self-contained).
    let mut machine = Machine::new(MachineConfig::default()).unwrap();
    let system = ComponentSystem::build(&mut machine, 50, 123).unwrap();
    // Update each kind on a different accelerator by running the whole
    // specialised pass once per accelerator choice.
    for accel in 0..machine.accel_count().min(3) {
        system
            .update_specialised_offloaded(&mut machine, accel)
            .unwrap();
    }
    assert_eq!(machine.races_detected(), 0);
}

#[test]
fn compiled_program_with_cache_policy_matches_naive_results() {
    let source = r#"
        var data: [int; 128];
        var out: int;
        fn main() -> int {
            let i: int = 0;
            while i < 128 { data[i] = i * 2; i = i + 1; }
            offload {
                let j: int = 0;
                let acc: int = 0;
                while j < 128 { acc = acc + data[j]; j = j + 1; }
                out = acc;
            }
            return out;
        }
    "#;
    let program = compile(source, &Target::cell_like()).unwrap();
    let expected = (0..128).map(|i| i * 2).sum::<i32>();

    let mut results = Vec::new();
    for policy in [
        OffloadCachePolicy::Naive,
        OffloadCachePolicy::Cached(CacheConfig::direct_mapped_4k()),
        OffloadCachePolicy::Cached(CacheConfig::four_way_16k()),
    ] {
        let mut machine = Machine::new(MachineConfig::default()).unwrap();
        let mut vm = Vm::new(&program, &mut machine).unwrap();
        vm.set_cache_policy(policy);
        results.push((vm.run(&mut machine).unwrap(), machine.host_now()));
    }
    for (exit, _) in &results {
        assert_eq!(*exit, expected);
    }
    let naive_cycles = results[0].1;
    let cached_cycles = results[1].1;
    assert!(
        cached_cycles < naive_cycles,
        "the cache only changes cost, and downward"
    );
}

#[test]
fn local_store_pressure_is_enforced_end_to_end() {
    // A single offload cannot hold more entity data than the 256 KiB
    // local store: the AI task over too many entities fails cleanly.
    let mut machine = Machine::new(MachineConfig::default()).unwrap();
    let n = 8192; // 8192 * 64 B = 512 KiB > 256 KiB
    let entities = EntityArray::alloc(&mut machine, n).unwrap();
    let mut gen = WorldGen::new(9);
    gen.populate(&mut machine, &entities, 50.0).unwrap();
    let table = gen
        .candidate_table(&mut machine, n, AiConfig::default().candidates)
        .unwrap();
    let result = machine
        .offload(0)
        .run(|ctx| {
            offload_repro::gamekit::ai_frame_offloaded(ctx, &entities, table, &AiConfig::default())
        })
        .unwrap();
    assert!(
        matches!(result, Err(SimError::Memory(_))),
        "local-store exhaustion must surface: {result:?}"
    );
}

#[test]
fn event_log_reconstructs_the_figure2_schedule() {
    let mut machine = Machine::new(MachineConfig::default()).unwrap();
    machine.events_mut().set_enabled(true);
    let entities = EntityArray::alloc(&mut machine, 256).unwrap();
    let mut gen = WorldGen::new(4);
    gen.populate(&mut machine, &entities, 40.0).unwrap();
    let table = gen
        .candidate_table(&mut machine, 256, AiConfig::default().candidates)
        .unwrap();
    run_frame(
        &mut machine,
        &entities,
        table,
        &AiConfig::default(),
        FrameSchedule::Offloaded { accel: 0 },
    )
    .unwrap();
    let events = machine.events().events();
    use offload_repro::simcell::EventKind;
    // The offload lifecycle is recorded in causal order even though
    // DMA/span events now interleave with it: find each by kind.
    let start = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::OffloadStart { accel: 0, .. }))
        .expect("offload start recorded");
    let end = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::OffloadEnd { accel: 0 }))
        .expect("offload end recorded");
    let join = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::Join { accel: 0 }))
        .expect("join recorded");
    assert!(start < end && end < join, "fork/join emitted in order");
    // The offloaded AI task issues explicit DMA; the trace shows it.
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::DmaIssue { accel: 0, .. })),
        "offloaded frame records DMA issue events"
    );
    // The join happens after the host's collision detection, i.e. the
    // host really did work between fork and join.
    assert!(events[join].at > events[start].at);
}

#[test]
fn shipped_omini_samples_compile_and_run() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/omini");

    let frame = std::fs::read_to_string(format!("{dir}/frame.omini")).unwrap();
    let program = compile(&frame, &Target::cell_like()).unwrap();
    let mut machine = Machine::new(MachineConfig::default()).unwrap();
    let mut vm = Vm::new(&program, &mut machine).unwrap();
    assert_eq!(vm.run(&mut machine).unwrap(), 176);
    assert_eq!(vm.output(), ["84.0000", "92.0000", "96"]);

    let word = std::fs::read_to_string(format!("{dir}/wordaddr.omini")).unwrap();
    // Compiles for byte targets AND 4-byte word targets (its point).
    for target in [Target::cell_like(), Target::word_addressed(4)] {
        let program = compile(&word, &target).unwrap();
        let mut machine = Machine::new(MachineConfig::default()).unwrap();
        let mut vm = Vm::new(&program, &mut machine).unwrap();
        assert_eq!(vm.run(&mut machine).unwrap(), 49);
    }
}
