//! The Figure 2 game loop, sequential vs offloaded, with an event
//! timeline.
//!
//! ```text
//! cargo run --release --example game_frame
//! ```
//!
//! Runs several frames of the paper's `GameWorld::doFrame` — AI
//! strategy offloaded to an accelerator while the host detects
//! collisions — and prints per-frame costs plus the offload lifecycle
//! events of the last frame.

use offload_repro::gamekit::{run_frame, AiConfig, EntityArray, FrameSchedule, WorldGen};
use offload_repro::offload_rt::prelude::*;

const ENTITIES: u32 = 1024;
const FRAMES: u32 = 5;

fn build() -> Result<(Machine, EntityArray, memspace::Addr), SimError> {
    let mut machine = Machine::new(MachineConfig::default())?;
    let entities = EntityArray::alloc(&mut machine, ENTITIES)?;
    let mut gen = WorldGen::new(2011);
    gen.populate(&mut machine, &entities, 60.0)?;
    let table = gen.candidate_table(&mut machine, ENTITIES, AiConfig::default().candidates)?;
    Ok((machine, entities, table))
}

fn main() -> Result<(), SimError> {
    println!("GameWorld::doFrame over {ENTITIES} entities, {FRAMES} frames\n");
    let config = AiConfig::default();

    for (label, schedule) in [
        ("sequential", FrameSchedule::Sequential),
        ("offloaded (Fig. 2)", FrameSchedule::Offloaded { accel: 0 }),
    ] {
        let (mut machine, entities, table) = build()?;
        machine.events_mut().set_enabled(true);
        println!("schedule: {label}");
        for frame in 0..FRAMES {
            machine.events_mut().clear();
            let stats = run_frame(&mut machine, &entities, table, &config, schedule)?;
            println!(
                "  frame {frame}: {:>9} host cycles, {:>3} collision pairs, AI task {:>7} cycles",
                stats.host_cycles, stats.pairs, stats.ai_cycles
            );
        }
        if machine.events().events().is_empty() {
            println!("  (no offload events: everything ran on the host)");
        } else {
            println!("  last frame's offload timeline:");
            for event in machine.events().events() {
                println!("    {event}");
            }
        }
        assert_eq!(machine.races_detected(), 0);
        println!();
    }

    println!(
        "Both schedules integrate identical worlds; the offloaded frame hides the AI task \
         behind host collision detection (paper Fig. 2)."
    );
    Ok(())
}
