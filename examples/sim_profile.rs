//! Traces one game frame end-to-end and shows every way to read it.
//!
//! ```text
//! cargo run --release --example sim_profile [trace.json]
//! ```
//!
//! Runs a single offloaded `doFrame` (paper Figure 2) with the event
//! log enabled, then:
//!
//! 1. prints the always-on utilization report,
//! 2. prints the ASCII timeline (host, accelerator and DMA lanes),
//! 3. writes the Chrome trace-event JSON — open it in
//!    <https://ui.perfetto.dev> and follow `PROFILING.md`.
//!
//! Tracing is zero simulated cost: the cycle counts printed here match
//! an untraced run bit for bit.

use offload_repro::gamekit::{run_frame, AiConfig, EntityArray, FrameSchedule, WorldGen};
use offload_repro::offload_rt::prelude::*;
use offload_repro::simcell::{ascii_timeline, chrome_trace_json};

const ENTITIES: u32 = 256;

fn main() -> Result<(), SimError> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "sim_profile.json".to_string());

    let mut machine = Machine::new(MachineConfig::small())?;
    let entities = EntityArray::alloc(&mut machine, ENTITIES)?;
    let mut gen = WorldGen::new(0xE2);
    gen.populate(&mut machine, &entities, 60.0)?;
    let table = gen.candidate_table(&mut machine, ENTITIES, AiConfig::default().candidates)?;

    machine.events_mut().set_enabled(true);
    let stats = run_frame(
        &mut machine,
        &entities,
        table,
        &AiConfig::default(),
        FrameSchedule::Offloaded { accel: 0 },
    )?;

    println!(
        "one offloaded doFrame over {ENTITIES} entities: {} host cycles, {} pairs, AI {} cycles\n",
        stats.host_cycles, stats.pairs, stats.ai_cycles
    );

    print!("{}", machine.utilization_report());

    println!("\ntimeline (host / accel / dma lanes):");
    print!("{}", ascii_timeline(machine.events(), 100));

    let json = chrome_trace_json(machine.events());
    std::fs::write(&path, &json).map_err(|e| SimError::BadConfig {
        reason: format!("cannot write {path}: {e}"),
    })?;
    println!(
        "\nwrote {path} ({} events) — load it in https://ui.perfetto.dev, then read PROFILING.md",
        machine.events().len()
    );
    Ok(())
}
