//! Quickstart: the three ways offloaded code can reach host memory,
//! and what each costs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the simulated Cell-like machine, puts an array in main
//! memory, and sums it from an accelerator three ways: naive
//! per-element outer access (one DMA round trip each), through a
//! software cache, and with one bulk `Array` accessor transfer — the
//! progression paper §4.2 walks through.

use offload_repro::offload_rt::prelude::*;

const N: u32 = 1024;

fn main() -> Result<(), SimError> {
    let mut machine = Machine::new(MachineConfig::default())?;
    println!(
        "machine: host + {} accelerators, {} KiB local stores\n",
        machine.accel_count(),
        machine.config().local_store_size / 1024
    );

    let data = machine.alloc_main_slice::<u32>(N)?;
    let values: Vec<u32> = (0..N).collect();
    machine.main_mut().write_pod_slice(data, &values)?;
    let expected: u32 = values.iter().sum();

    // 1. Naive: each element is a synchronous DMA round trip.
    let naive = machine
        .offload(0)
        .run(|ctx| -> Result<(u32, u64), SimError> {
            let t0 = ctx.now();
            let mut sum = 0u32;
            for i in 0..N {
                sum = sum.wrapping_add(ctx.outer_read_pod::<u32>(data.element(i, 4)?)?);
            }
            Ok((sum, ctx.now() - t0))
        })??;

    // 2. Through a software cache: misses fetch whole lines.
    let cached = machine
        .offload(0)
        .run(|ctx| -> Result<(u32, u64), SimError> {
            let mut cache = ctx.new_cache(CacheConfig::direct_mapped_4k())?;
            let t0 = ctx.now();
            let mut sum = 0u32;
            for i in 0..N {
                sum = sum
                    .wrapping_add(ctx.cached_read_pod::<u32, _>(&mut cache, data.element(i, 4)?)?);
            }
            Ok((sum, ctx.now() - t0))
        })??;

    // 3. The Array accessor: one bulk transfer, then local reads.
    let bulk = machine
        .offload(0)
        .run(|ctx| -> Result<(u32, u64), SimError> {
            let t0 = ctx.now();
            let array = ArrayAccessor::<u32>::fetch(ctx, data, N)?;
            let mut sum = 0u32;
            for i in 0..N {
                sum = sum.wrapping_add(array.get(ctx, i)?);
            }
            Ok((sum, ctx.now() - t0))
        })??;

    for (name, (sum, cycles)) in [
        ("naive outer", naive),
        ("software cache", cached),
        ("Array accessor", bulk),
    ] {
        assert_eq!(sum, expected, "every style computes the same sum");
        println!(
            "{name:>16}: {cycles:>9} accelerator cycles  ({:.1} cycles/element)",
            cycles as f64 / f64::from(N)
        );
    }
    println!(
        "\nspeedups: cache {:.1}x, accessor {:.1}x over naive",
        naive.1 as f64 / cached.1 as f64,
        naive.1 as f64 / bulk.1 as f64
    );
    println!("DMA races detected: {}", machine.races_detected());
    Ok(())
}
