//! Scaling one frame task across all six accelerators, then letting
//! the tile scheduler fix a skewed one.
//!
//! ```text
//! cargo run --release --example multi_accel
//! ```
//!
//! The Cell in the PS3 exposes six usable SPEs; the paper's Figure 2
//! uses one. This example tiles the AI strategy task across 1–6
//! simulated accelerators (each tile bulk-fetches the shared read-only
//! entity array and writes back only its slice) and prints the scaling
//! curve. It then skews the tile costs — a few "hot" tiles, as a real
//! frame has — and dispatches the same work under all three
//! `offload_rt::sched` policies through the fluent builder chain,
//! showing work stealing recovering the cycles the static split loses.
//! Finally the same fan-out effect is shown at the language level with
//! named asynchronous offload handles.

use offload_repro::gamekit::{ai_frame_offloaded_tiled, AiConfig, EntityArray, WorldGen};
use offload_repro::offload_lang::{compile, Target, Vm};
use offload_repro::offload_rt::prelude::*;

const ENTITIES: u32 = 1024;

fn tiled(accels: u16) -> Result<u64, SimError> {
    let config = AiConfig::default();
    let mut machine = Machine::new(MachineConfig::default())?;
    let entities = EntityArray::alloc(&mut machine, ENTITIES)?;
    let mut gen = WorldGen::new(6);
    gen.populate(&mut machine, &entities, 70.0)?;
    let table = gen.candidate_table(&mut machine, ENTITIES, config.candidates)?;
    ai_frame_offloaded_tiled(&mut machine, &entities, table, &config, accels)
}

/// Dispatches one skewed synthetic frame — 24 tiles, the first 6 hot —
/// over 6 lanes under `policy`, via the fluent builder chain.
fn skewed(policy: SchedPolicy) -> Result<SchedReport, SimError> {
    const TILES: u32 = 24;
    let mut machine = Machine::new(MachineConfig::default())?;
    let (_, report) = machine
        .offload(0)
        .label("skewed tile")
        .sched(policy)
        .accels(6)
        .run_tiles(TILES, |ctx, tile| {
            ctx.compute(if tile < TILES / 4 { 180_000 } else { 30_000 });
            Ok(())
        })?;
    Ok(report)
}

fn main() -> Result<(), SimError> {
    println!("AI strategy task over {ENTITIES} entities, tiled across accelerators:\n");
    let base = tiled(1)?;
    println!("  accels   frame cycles   speedup   efficiency");
    for accels in 1..=6u16 {
        let cycles = tiled(accels)?;
        let speedup = base as f64 / cycles as f64;
        println!(
            "  {accels:>6}   {cycles:>12}   {speedup:>6.2}x   {:>8.0}%",
            100.0 * speedup / f64::from(accels)
        );
    }

    // Uniform tiles are the easy case — a static block split is already
    // right. Skew the costs and compare the scheduling policies.
    println!("\nSkewed tiles (24 tiles over 6 lanes, first quarter hot), by policy:\n");
    let st = skewed(SchedPolicy::Static)?;
    println!("  policy           cycles      vs static   steals   imbalance");
    for policy in [
        SchedPolicy::Static,
        SchedPolicy::ShortestQueue,
        SchedPolicy::WorkStealing,
    ] {
        let report = skewed(policy)?;
        println!(
            "  {:<14}   {:>9}   {:>8.2}x   {:>6}   {:>9.2}",
            policy.name(),
            report.cycles,
            st.cycles as f64 / report.cycles as f64,
            report.steals,
            report.imbalance(),
        );
    }

    // The same overlap, written in Offload/Mini with named handles: four
    // independent chunks of work fan out over four accelerators.
    let source = r#"
        var s0: int; var s1: int; var s2: int; var s3: int;
        fn main() -> int {
            offload h0 { let i: int = 0; let a: int = 0; while i < 1500 { a = a + i; i = i + 1; } s0 = a; }
            offload h1 { let i: int = 0; let a: int = 0; while i < 1500 { a = a + i; i = i + 1; } s1 = a; }
            offload h2 { let i: int = 0; let a: int = 0; while i < 1500 { a = a + i; i = i + 1; } s2 = a; }
            offload h3 { let i: int = 0; let a: int = 0; while i < 1500 { a = a + i; i = i + 1; } s3 = a; }
            join h0; join h1; join h2; join h3;
            if s0 == s1 && s1 == s2 && s2 == s3 { return 4; }
            return 0;
        }
    "#;
    let program = compile(source, &Target::cell_like()).expect("fan-out compiles");
    let mut machine = Machine::new(MachineConfig::default())?;
    let mut vm = Vm::new(&program, &mut machine)?;
    let fanout_exit = vm.run(&mut machine).expect("fan-out runs");
    let fanout_cycles = machine.host_now();

    // The synchronous version of the same program, for contrast.
    let sync = source
        .replace("offload h0", "offload")
        .replace("offload h1", "offload")
        .replace("offload h2", "offload")
        .replace("offload h3", "offload")
        .replace("join h0; join h1; join h2; join h3;", "");
    let program = compile(&sync, &Target::cell_like()).expect("sync compiles");
    let mut machine = Machine::new(MachineConfig::default())?;
    let mut vm = Vm::new(&program, &mut machine)?;
    let sync_exit = vm.run(&mut machine).expect("sync runs");
    let sync_cycles = machine.host_now();

    assert_eq!(fanout_exit, sync_exit);
    println!(
        "\nOffload/Mini named handles: 4 async offloads in {fanout_cycles} cycles vs \
         {sync_cycles} synchronous ({:.2}x from language-level fan-out)",
        sync_cycles as f64 / fanout_cycles as f64
    );
    Ok(())
}
