//! A DMA "lint tool": static + dynamic race checking over kernels.
//!
//! ```text
//! cargo run --release --example dma_doctor
//! ```
//!
//! The paper (§2) notes that DMA synchronisation bugs are "hard to
//! reproduce and fix" and points at both static and dynamic detection
//! tools. This example plays the tool: it takes Figure 1's kernel in a
//! correct and a broken variant, runs the static analyzer over both,
//! then executes the broken one on a real simulated engine to show the
//! dynamic checker catching the same bug.

use offload_repro::dma::{analyze_kernel, AccessKind, DmaKernel, KernelOp, RaceMode, Tag};
use offload_repro::memspace::AddrRange;
use offload_repro::offload_rt::prelude::*;

fn ls(offset: u32, len: u32) -> AddrRange {
    AddrRange::new(Addr::new(SpaceId::local_store(0), offset), len).unwrap()
}

fn main_r(offset: u32, len: u32) -> AddrRange {
    AddrRange::new(Addr::new(SpaceId::MAIN, offset), len).unwrap()
}

/// The paper's Figure 1 kernel; `broken` drops the first `dma_wait`.
fn figure1(broken: bool) -> DmaKernel {
    let mut kernel = DmaKernel::new(if broken {
        "figure1 (missing dma_wait)"
    } else {
        "figure1 (correct)"
    });
    kernel.ops.push(KernelOp::Get {
        local: ls(0x100, 64),
        remote: main_r(0x1000, 64),
        tag: 1,
    });
    kernel.ops.push(KernelOp::Get {
        local: ls(0x140, 64),
        remote: main_r(0x2000, 64),
        tag: 1,
    });
    if !broken {
        kernel.ops.push(KernelOp::Wait { mask: 1 << 1 });
    }
    // do_collision_response(&e1, &e2);
    kernel.ops.push(KernelOp::Access {
        range: ls(0x100, 128),
        kind: AccessKind::Write,
    });
    kernel.ops.push(KernelOp::Put {
        local: ls(0x100, 64),
        remote: main_r(0x1000, 64),
        tag: 1,
    });
    kernel.ops.push(KernelOp::Put {
        local: ls(0x140, 64),
        remote: main_r(0x2000, 64),
        tag: 1,
    });
    kernel.ops.push(KernelOp::Wait { mask: 1 << 1 });
    kernel
}

fn main() -> Result<(), SimError> {
    println!("== static analysis (cf. Donaldson et al., TACAS 2010) ==\n");
    for broken in [false, true] {
        let kernel = figure1(broken);
        let findings = analyze_kernel(&kernel);
        println!("{}: {} finding(s)", kernel.name, findings.len());
        for finding in &findings {
            println!("  {finding}");
        }
    }

    println!("\n== dynamic checking (cf. IBM Cell Race Check Library) ==\n");
    // Execute the broken pattern on the simulated machine: the data
    // still arrives "in time" in simulation — exactly why such bugs
    // slip through testing — but the checker flags it.
    let mut machine = Machine::new(MachineConfig::default())?;
    let e1 = machine.alloc_main(64, 16)?;
    let e2 = machine.alloc_main(64, 16)?;
    machine.offload(0).run(|ctx| -> Result<(), SimError> {
        let b1 = ctx.alloc_local(64, 16)?;
        let b2 = ctx.alloc_local(64, 16)?;
        let tag = Tag::new(1).expect("valid tag");
        ctx.dma_get(b1, e1, 64, tag)?;
        ctx.dma_get(b2, e2, 64, tag)?;
        // BUG: no ctx.dma_wait_tag(tag) before touching the buffers.
        let v: u32 = ctx.local_read_pod(b1)?;
        ctx.local_write_pod(b1, &(v + 1))?;
        ctx.dma_wait_tag(tag);
        ctx.dma_put(b1, e1, 64, tag)?;
        ctx.dma_wait_tag(tag);
        Ok(())
    })??;
    println!(
        "program computed a plausible result; races detected: {}",
        machine.races_detected()
    );
    for report in machine.take_race_reports() {
        println!("  {report}");
    }

    println!(
        "\nIn panic mode the first race aborts the run (RaceMode::{:?} vs RaceMode::Record).",
        RaceMode::Panic
    );
    Ok(())
}
