//! A tour of the Offload/Mini language: the paper's mechanisms as a
//! programmer meets them.
//!
//! ```text
//! cargo run --release --example offload_mini
//! ```
//!
//! Compiles and runs a game-flavoured program with classes, an offload
//! block and a dispatch domain; then demonstrates the three diagnostics
//! the paper's type system is built around: the memory-space error, the
//! domain-miss exception, and the word-addressing error.

use offload_repro::offload_lang::{compile, OffloadCachePolicy, Target, Vm, WordStrategy};
use offload_repro::offload_rt::prelude::*;

const GAME: &str = r#"
    class Entity {
        hp: float;
        armour: float;
        virtual fn tick(damage: float) {
            self.hp = self.hp - damage;
        }
    }
    class Enemy : Entity {
        override fn tick(damage: float) {
            self.hp = self.hp - (damage - self.armour);
        }
    }

    var player: Entity*;
    var boss: Entity*;
    var frames: int;

    fn main() -> int {
        player = new Entity;
        player.hp = 100.0;
        boss = new Enemy;
        boss.hp = 100.0;
        boss.armour = 2.0;
        frames = 0;

        while frames < 10 {
            // The per-frame combat task runs on the accelerator; the
            // entities live in outer (host) memory.
            offload domain(Entity.tick, Enemy.tick) {
                player.tick(3.0);
                boss.tick(3.0);
            }
            frames = frames + 1;
        }
        print_float(player.hp);
        print_float(boss.hp);
        return float_to_int(player.hp) + float_to_int(boss.hp);
    }
"#;

fn main() {
    // ---- the happy path ---------------------------------------------------
    let target = Target::cell_like();
    let program = compile(GAME, &target).expect("the game program compiles");
    println!(
        "compiled: {} function variants ({} offload blocks, domain sizes {:?})",
        program.stats.functions_compiled, program.stats.offload_blocks, program.stats.domain_sizes
    );
    for (name, count) in {
        let mut d: Vec<_> = program.stats.duplicates.iter().collect();
        d.sort();
        d
    } {
        println!("  {name}: {count} memory-space variant(s)");
    }

    let mut machine = Machine::new(MachineConfig::default()).expect("machine builds");
    let mut vm = Vm::new(&program, &mut machine).expect("program loads");
    vm.set_cache_policy(OffloadCachePolicy::Cached(
        offload_repro::softcache::CacheConfig::direct_mapped_4k(),
    ));
    let exit = vm.run(&mut machine).expect("program runs");
    println!(
        "\nran 10 frames in {} simulated host cycles; output: {:?}; exit {exit}",
        machine.host_now(),
        vm.output()
    );

    // ---- asynchronous offload handles (the paper's Figure 2) ---------------
    let figure2 = r#"
        var strategy_done: int;
        var collisions_done: int;
        fn main() -> int {
            // __offload_handle_t h = __offload { calculateStrategy(); };
            offload h {
                let i: int = 0;
                let acc: int = 0;
                while i < 500 { acc = acc + i; i = i + 1; }
                strategy_done = acc;
            }
            // this->detectCollisions();  (host, in parallel)
            let j: int = 0;
            let acc: int = 0;
            while j < 500 { acc = acc + j; j = j + 1; }
            collisions_done = acc;
            // __offload_join(h);
            join h;
            return strategy_done - collisions_done;
        }
    "#;
    let program = compile(figure2, &target).expect("figure 2 compiles");
    let mut machine = Machine::new(MachineConfig::default()).expect("machine builds");
    let mut vm = Vm::new(&program, &mut machine).expect("loads");
    let exit = vm.run(&mut machine).expect("runs");
    println!(
        "\nFigure-2 style async offload: exit {exit} (accelerator and host agreed) in {} \
         host cycles — AI hid behind host work",
        machine.host_now()
    );

    // ---- diagnostic 1: the memory-space error ------------------------------
    let bad_space = r#"
        var g: int;
        fn main() -> int {
            offload {
                let x: int = 1;
                let p: int* = &x;
                p = &g;            // outer pointer into a local pointer
            }
            return 0;
        }
    "#;
    let err = compile(bad_space, &target).expect_err("spaces must not mix");
    println!("\n[memory-space error]\n{}", err.render(bad_space));

    // ---- diagnostic 2: the domain-miss exception ----------------------------
    let missed = r#"
        class Entity {
            hp: float;
            virtual fn tick(d: float) { self.hp = self.hp - d; }
        }
        var e: Entity*;
        fn main() -> int {
            e = new Entity;
            offload { e.tick(1.0); }    // forgot the domain annotation
            return 0;
        }
    "#;
    let program = compile(missed, &target).expect("compiles; fails at dispatch");
    let mut machine = Machine::new(MachineConfig::default()).expect("machine builds");
    let mut vm = Vm::new(&program, &mut machine).expect("loads");
    let err = vm.run(&mut machine).expect_err("dispatch must miss");
    println!("\n[domain miss at runtime]\n{err}");

    // ---- diagnostic 3: the word-addressing error ----------------------------
    let strings = r#"
        var s: [char; 16];
        fn main() -> int {
            let i: int = 0;
            while i < 16 { s[i] = 65; i = i + 1; }
            return 0;
        }
    "#;
    let word_target = Target::word_addressed(4);
    let err = compile(strings, &word_target).expect_err("hybrid rejects byte loops");
    println!(
        "\n[word-addressing error on a 4-byte-word target]\n{}",
        err.render(strings)
    );

    let emulate = word_target.with_strategy(WordStrategy::ByteEmulate);
    let program = compile(strings, &emulate).expect("byte emulation accepts it");
    let mut machine = Machine::new(MachineConfig::default()).expect("machine builds");
    let mut vm = Vm::new(&program, &mut machine).expect("loads");
    vm.run(&mut machine)
        .expect("runs, paying the emulation tax");
    println!(
        "\nthe same program under byte emulation: runs in {} cycles (every dereference pays)",
        machine.host_now()
    );
}
