//! A fleet of deterministic worlds on the sim farm.
//!
//! ```text
//! cargo run --release --example sim_farm
//! ```
//!
//! Submits 64 seeded worlds to a 4-worker farm, reaps the reports in
//! submission order, and verifies the farm's central invariant live:
//! a world picked from the middle of the batch is re-run solo on a
//! fresh machine and must hash bit-for-bit the same. The farm recycles
//! each worker's machine between worlds (`Machine::reset_for_seed`),
//! so the 64 worlds cost 4 machine constructions, not 64.

use offload_repro::simfarm::{run_world, Farm, WorldSpec};

const WORLDS: u64 = 64;
const WORKERS: usize = 4;

fn main() {
    let mut farm = Farm::new(WORKERS).expect("worker count is positive");
    println!("submitting {WORLDS} worlds to {WORKERS} workers…");
    for seed in 0..WORLDS {
        farm.submit(WorldSpec::quick(seed * 0x9E37 + 1));
    }

    let reports = farm.collect();
    assert_eq!(reports.len(), WORLDS as usize);
    println!("  ticket  seed              hash              cycles   worker");
    for report in reports.iter().step_by(9) {
        let output = report.outcome.as_ref().expect("worlds are well-formed");
        println!(
            "  {:>6}  {:016x}  {:016x}  {:>7}  {:>5}",
            report.ticket.index(),
            report.seed,
            output.world_hash,
            output.sim_cycles,
            report.worker
        );
    }

    let busy = farm.worker_busy_nanos();
    let total_ms: f64 = busy.iter().sum::<u64>() as f64 / 1e6;
    println!("worker CPU time: {total_ms:.2} ms total across {WORKERS} workers");

    // The invariant, demonstrated: a farm world equals its solo twin.
    let probe = &reports[reports.len() / 2];
    let solo = run_world(&WorldSpec::quick(probe.seed)).expect("solo twin runs");
    let farmed = probe.outcome.as_ref().expect("world is well-formed");
    assert_eq!(
        farmed.world_hash, solo.world_hash,
        "farm world diverged from its solo run"
    );
    assert_eq!(farmed.stats, solo.stats);
    assert_eq!(farmed.sim_cycles, solo.sim_cycles);
    println!(
        "world {:#x}: farm hash {:016x} == solo hash {:016x} ✓",
        probe.seed, farmed.world_hash, solo.world_hash
    );
}
