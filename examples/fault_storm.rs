//! Surviving a fault storm: deterministic injection, retry, eviction,
//! and host fallback through the fluent builder chain.
//!
//! ```text
//! cargo run --release --example fault_storm
//! ```
//!
//! The consoles the paper's teams shipped on treat a flaky DMA or a
//! wedged coprocessor as a fatal bug. This example arms `simcell`'s
//! seeded fault plane — the same machine, the same frame, zero
//! wall-clock nondeterminism — and lets the recovery stack absorb the
//! damage: transient faults retry with a cycle-accounted backoff, dead
//! accelerators are evicted mid-run, and tiles nothing can run degrade
//! to the host at the cost model's honest penalty. Every run finishes
//! with the faultless frame's world bit-for-bit; the storm only costs
//! cycles, and the printout shows exactly how many.

use offload_repro::gamekit::{
    ai_frame_sched, ai_frame_sched_recovering, AiConfig, EntityArray, GameEntity, WorldGen,
};
use offload_repro::offload_rt::prelude::*;

const ENTITIES: u32 = 1024;
const ACCELS: u16 = 6;
const TILES: u32 = 24;

/// Runs one AI frame under `policy`; `rate` arms a uniform fault plan
/// (None = faultless baseline). Returns the report and final world.
fn frame(
    policy: SchedPolicy,
    rate: Option<f32>,
) -> Result<(SchedReport, Vec<GameEntity>), SimError> {
    let config = AiConfig::default();
    let mut machine = Machine::new(MachineConfig::default())?;
    let entities = EntityArray::alloc(&mut machine, ENTITIES)?;
    let mut gen = WorldGen::new(0xF457);
    gen.populate(&mut machine, &entities, 70.0)?;
    let table = gen.candidate_table(&mut machine, ENTITIES, config.candidates)?;
    let report = match rate {
        None => ai_frame_sched(
            &mut machine,
            &entities,
            table,
            &config,
            ACCELS,
            TILES,
            policy,
            &[],
        )?,
        Some(rate) => ai_frame_sched_recovering(
            &mut machine,
            &entities,
            table,
            &config,
            ACCELS,
            TILES,
            policy,
            FaultPlan::uniform(0xF457, rate),
            3,     // retries per transient fault
            1_000, // backoff cycles per retry
        )?,
    };
    assert_eq!(machine.races_detected(), 0);
    Ok((report, entities.snapshot(&machine)?))
}

fn main() -> Result<(), SimError> {
    println!(
        "AI frame over {ENTITIES} entities, {TILES} tiles on {ACCELS} lanes, \
         under a rising fault storm:\n"
    );
    for policy in [
        SchedPolicy::Static,
        SchedPolicy::ShortestQueue,
        SchedPolicy::WorkStealing,
    ] {
        let (clean, clean_world) = frame(policy, None)?;
        println!("  {} (faultless: {} cycles)", policy.name(), clean.cycles);
        println!("    rate    cycles     overhead   faults  retries  fallbacks  evicted");
        for rate in [0.0f32, 0.02, 0.05, 0.10] {
            let (report, world) = frame(policy, Some(rate))?;
            // The anchor invariant: recovery is exact. Retries restart
            // tiles from a clean local-store mark and completed writes
            // overwrite any scribble damage, so the world matches the
            // faultless frame bit-for-bit at every rate.
            assert_eq!(world, clean_world, "recovery must be exact");
            println!(
                "    {rate:.2}   {:>8}   {:>7.3}x   {:>6}  {:>7}  {:>9}  {:>7}",
                report.cycles,
                report.cycles as f64 / clean.cycles as f64,
                report.faults,
                report.retries,
                report.fallbacks,
                report.evicted.len(),
            );
        }
        println!();
    }

    // The same stack on a synthetic storm so heavy it kills lanes: a
    // death-loaded plan through the raw builder chain. Dead lanes are
    // evicted, their queues redistributed, and when every lane is gone
    // the remaining tiles degrade to host execution.
    let mut machine = Machine::new(MachineConfig::default())?;
    let plan = FaultPlan::new(0xDEAD)
        .with_accel_death(0.35)
        .with_dma_corrupt(0.05);
    let (_, report) = machine
        .offload(0)
        .label("storm tile")
        .faults(plan)
        .sched(SchedPolicy::WorkStealing)
        .accels(4)
        .retry(2)
        .backoff(500)
        .fallback_host()
        .run_tiles(16, |ctx, _tile| {
            ctx.compute(40_000);
            Ok(())
        })?;
    println!(
        "Death-heavy storm (35% launch deaths on 4 lanes, 16 tiles): {} cycles, \
         {} lanes evicted {:?}, {} tiles fell back to the host.",
        report.cycles,
        report.evicted.len(),
        report.evicted,
        report.fallbacks,
    );
    println!(
        "\nSame seed, same storm: re-run this binary and every number above is identical.\n\
         Trace it: cargo run --release -p bench --bin paper_tables -- --trace e2.json\n\
         writes e2-faults.json with the `faults N` lanes (see PROFILING.md)."
    );
    Ok(())
}
