//! Trace-driven cache-policy autotuning of a naive AI frame.
//!
//! ```text
//! cargo run --release --example cache_tuner
//! ```
//!
//! The paper (§4.2) ships a *family* of software caches and tells the
//! programmer to pick one by profiling. This example closes that loop
//! mechanically on one Figure-2 AI frame written the worst way possible
//! — every entity, candidate index and candidate target fetched with a
//! blocking outer access:
//!
//! 1. run the naive frame once with access-trace capture enabled,
//! 2. `softcache::autotune` replays the trace through an analytic cost
//!    model for every candidate cache configuration and validates the
//!    top picks by exact simulated replay,
//! 3. re-run the identical frame with the winning cache built by
//!    [`offload_rt::build_tuned_cache`] — the measured cycles land
//!    *exactly* on the tuner's replay prediction, and the world state
//!    matches the naive run bit-for-bit.

use offload_repro::gamekit::{ai, AiConfig, EntityArray, GameEntity, WorldGen};
use offload_repro::offload_rt::prelude::*;
use offload_repro::softcache::autotune::{replay_exact, TuneOptions};
use offload_repro::softcache::AccessRecord;

const ENTITIES: u32 = 256;
const WORLD_SEED: u64 = 0xE2;

fn build_world() -> Result<(Machine, EntityArray, Addr), SimError> {
    let mut machine = Machine::new(MachineConfig::small())?;
    let entities = EntityArray::alloc(&mut machine, ENTITIES)?;
    let mut gen = WorldGen::new(WORLD_SEED);
    gen.populate(&mut machine, &entities, 80.0)?;
    let table = gen.candidate_table(&mut machine, ENTITIES, AiConfig::default().candidates)?;
    Ok((machine, entities, table))
}

fn read_entity(
    ctx: &mut AccelCtx<'_>,
    cache: &mut Option<TunedCache>,
    addr: Addr,
) -> Result<GameEntity, SimError> {
    match cache {
        Some(c) => ctx.cached_read_pod(c, addr),
        None => ctx.outer_read_pod(addr),
    }
}

/// One naive per-entity AI frame: the un-ported inner loop of Figure 2,
/// optionally routed through the tuner's cache. Returns the cycles of
/// the access loop (the window the captured trace covers).
fn ai_frame(
    ctx: &mut AccelCtx<'_>,
    entities: &EntityArray,
    table: Addr,
    config: &AiConfig,
    choice: Option<&CacheChoice>,
) -> Result<u64, SimError> {
    let k = config.candidates;
    let mut cache = match choice {
        Some(c) => build_tuned_cache(ctx, c)?,
        None => None,
    };
    let t0 = ctx.now();
    for i in 0..entities.len() {
        let mut me = read_entity(ctx, &mut cache, entities.addr_of(i)?)?;
        let mut candidates = Vec::with_capacity(k as usize);
        for j in 0..k {
            let idx_addr = table.element(i * k + j, 4)?;
            let idx: u32 = match &mut cache {
                Some(c) => ctx.cached_read_pod(c, idx_addr)?,
                None => ctx.outer_read_pod(idx_addr)?,
            };
            let c = read_entity(ctx, &mut cache, entities.addr_of(idx)?)?;
            ctx.compute(config.per_candidate_compute);
            candidates.push((idx, c.pos, c.health));
        }
        ai::decide(&mut me, i, &candidates);
        ctx.compute(config.think_compute);
        match &mut cache {
            Some(c) => ctx.cached_write_pod(c, entities.addr_of(i)?, &me)?,
            None => ctx.outer_write_pod(entities.addr_of(i)?, &me)?,
        }
    }
    let elapsed = ctx.now() - t0;
    // Write-back epilogue for correctness; deliberately outside the
    // measured window, which covers exactly what the trace replays.
    if let Some(c) = &mut cache {
        ctx.cache_flush(c)?;
    }
    Ok(elapsed)
}

fn run_frame(
    choice: Option<&CacheChoice>,
    capture: bool,
) -> Result<(u64, Vec<AccessRecord>, Vec<GameEntity>), SimError> {
    let (mut machine, entities, table) = build_world()?;
    machine.access_trace_mut().set_enabled(capture);
    let config = AiConfig::default();
    let cycles = machine
        .offload(0)
        .run(|ctx| ai_frame(ctx, &entities, table, &config, choice))??;
    let world = entities.snapshot(&machine)?;
    Ok((cycles, machine.access_trace().records().to_vec(), world))
}

fn main() -> Result<(), SimError> {
    println!("cache_tuner: autotuning one naive Figure-2 AI frame ({ENTITIES} entities)\n");

    // 1. Profile: run naively, capturing the access trace.
    let (naive_cycles, trace, naive_world) = run_frame(None, true)?;
    println!(
        "naive frame: {naive_cycles} cycles, {} recorded accesses",
        trace.len()
    );

    // 2. Tune: model every candidate, exactly replay the top picks.
    let opts = TuneOptions::default();
    let report = autotune(&trace, &opts).expect("candidate space is valid");
    println!("\n{:<22} {:>12} {:>12}", "candidate", "model", "exact");
    for c in report.candidates() {
        match c.exact_cycles {
            Some(exact) => println!(
                "{:<22} {:>12} {:>12}",
                c.choice.to_string(),
                c.model_cycles,
                exact
            ),
            None => println!(
                "{:<22} {:>12} {:>12}",
                c.choice.to_string(),
                c.model_cycles,
                "-"
            ),
        }
    }
    let winner = report.winner();
    let predicted = winner.exact_cycles.expect("winner was validated by replay");
    println!("\nwinner: {} (predicted {predicted} cycles)", winner.choice);

    // The naive run itself must replay bit-identically — the evidence
    // that the trace plus cost model capture everything that matters.
    let naive_replay =
        replay_exact(&CacheChoice::Naive, &trace, &opts).expect("naive replay succeeds");
    assert_eq!(naive_cycles, naive_replay, "naive replay is bit-identical");

    // 3. Apply: re-run the same frame with the tuned cache.
    let (tuned_cycles, _, tuned_world) = run_frame(Some(&winner.choice), false)?;
    assert_eq!(
        tuned_cycles, predicted,
        "the tuned run must land exactly on the replay prediction"
    );
    assert_eq!(
        naive_world, tuned_world,
        "the cache must not change what the frame computes"
    );

    println!(
        "tuned frame: {tuned_cycles} cycles — measured == predicted, world state identical, \
         {:.2}x faster than naive",
        naive_cycles as f64 / tuned_cycles as f64
    );
    Ok(())
}
