//! The staged frame as a streaming pipeline: skinning → collision →
//! resolve, one stage per accelerator, chunks flowing through bounded
//! queues — overlap measured in simulated cycles, world bit-identical
//! to the sequential schedule.
//!
//! ```text
//! cargo run --release --example pipeline_frame
//! ```
//!
//! The paper's teams chained dependent tasks over the same data and
//! paid a full barrier between every pair. This example runs the same
//! three-stage chain both ways: sequentially (stage k streams the whole
//! array before stage k+1 starts) and through `machine.pipeline()`
//! (stage k+1 starts chewing chunk 0 the moment stage k pushes it).
//! Because every stage is an entity-local transform, the worlds match
//! bit for bit — the pipeline's only effect is the overlapped cycles,
//! and the printout shows where the remaining stalls sit (input waits
//! vs backpressure) at each queue depth. A final run arms a fault plan
//! to show recovery keeps the bit-identity guarantee.

use offload_repro::gamekit::{
    stage_fn, staged_frame_pipeline, staged_frame_sequential, EntityArray, WorldGen, FRAME_STAGES,
};
use offload_repro::offload_rt::prelude::*;

const ENTITIES: u32 = 1024;
const CHUNK: u32 = 64;
const WORLD_SEED: u64 = 0xE17;

/// A fresh machine with a populated entity world, identical every call.
fn build_world() -> Result<(Machine, EntityArray), SimError> {
    let mut machine = Machine::new(MachineConfig::default())?;
    let entities = EntityArray::alloc(&mut machine, ENTITIES)?;
    WorldGen::new(WORLD_SEED).populate(&mut machine, &entities, 100.0)?;
    Ok((machine, entities))
}

fn main() -> Result<(), SimError> {
    println!(
        "Staged frame over {ENTITIES} entities, {CHUNK}-entity chunks, \
         three dependent stages:\n"
    );

    // The baseline: stage-by-stage on one accelerator, full barrier
    // between stages.
    let (mut seq_machine, seq_entities) = build_world()?;
    let seq_cycles = staged_frame_sequential(&mut seq_machine, &seq_entities, CHUNK)?;
    let seq_hash = seq_machine.memory_hash();
    println!("  sequential (1 accel, full barriers): {seq_cycles} cycles\n");

    // The pipeline at increasing queue depths. Shallow queues
    // backpressure the producer; deeper queues drain the stalls until
    // the slowest stage is the only limit.
    println!("  pipeline (3 accels, bounded queues):");
    println!("    buffers   cycles    speedup   input-wait   backpressure");
    for buffers in [1u32, 2, 4] {
        let (mut machine, entities) = build_world()?;
        let report = staged_frame_pipeline(&mut machine, &entities, CHUNK, buffers)?;
        assert_eq!(
            machine.memory_hash(),
            seq_hash,
            "the pipeline must produce the sequential world bit for bit"
        );
        println!(
            "    {buffers:>7}   {:>6}   {:>6.3}x   {:>10}   {:>12}",
            report.cycles,
            seq_cycles as f64 / report.cycles as f64,
            report.input_wait_cycles,
            report.backpressure_cycles,
        );
    }

    // Per-stage lane occupancy at the default depth: busy is cycles
    // spent running chunks, idle is everything else (waiting for input,
    // waiting for queue space, waiting for the frame to end).
    let (mut machine, entities) = build_world()?;
    let report = staged_frame_pipeline(&mut machine, &entities, CHUNK, 2)?;
    println!("\n  lane report (buffers = 2):");
    for lane in &report.lanes {
        println!(
            "    accel {} [{:>7}]: {} chunks, {} busy cycles, {} idle",
            lane.accel, lane.name, lane.chunks, lane.busy, lane.idle
        );
    }

    // The same chain under fire: a seeded fault plan corrupts DMA and
    // wedges tags mid-stream; retries replay chunks from a clean mark
    // and the world still matches the faultless run bit for bit.
    let (mut machine, entities) = build_world()?;
    let (base, len) = (entities.base(), entities.len());
    let mut builder = machine.pipeline();
    for stage in FRAME_STAGES {
        builder = builder.stage_named(stage.name(), stage_fn(stage));
    }
    let stormy = builder
        .chunk(CHUNK)
        .buffers(2)
        .faults(FaultPlan::uniform(WORLD_SEED, 0.03))
        .retry(4)
        .backoff(1_000)
        .fallback_host()
        .run(base, len)?;
    assert_eq!(
        machine.memory_hash(),
        seq_hash,
        "recovery must be exact: the stormy pipeline matches the clean world"
    );
    assert_eq!(machine.races_detected(), 0);
    println!(
        "\n  under a 3% fault storm: {} cycles ({} faults, {} retries, {} host \
         fallbacks) — world still bit-identical.",
        stormy.cycles, stormy.faults, stormy.retries, stormy.fallbacks,
    );
    println!(
        "\nSame seeds, same schedule: re-run this binary and every number above is \
         identical.\nTrace it: cargo run --release -p bench --bin paper_tables -- --trace e2.json\n\
         writes e2-pipe.json with the `pipe N` lanes (see PROFILING.md)."
    );
    Ok(())
}
