//! # offload-repro
//!
//! A from-scratch Rust reproduction of *"The Impact of Diverse Memory
//! Architectures on Multicore Consumer Software: An industrial
//! perspective from the video games domain"* (Russell, Riley, Henning,
//! Dolinsky, Richards, Donaldson, van Amesfoort — MSPC/PLDI 2011).
//!
//! The paper describes Codeplay's **Offload C++** system for moving
//! portions of AAA game code onto accelerator cores with private,
//! non-cache-coherent local stores (the Cell BE in the PlayStation 3).
//! This workspace rebuilds the whole stack on a simulated machine:
//!
//! | Crate | What it is |
//! |---|---|
//! | [`memspace`] | memory spaces, addresses, simulated memories, Pod layout |
//! | [`dma`] | tagged non-blocking DMA + dynamic & static race checkers |
//! | [`softcache`] | the software-cache family (set-associative, streaming) |
//! | [`simcell`] | the cycle-accounted host+accelerators machine |
//! | [`offload_rt`] | accessor classes, double buffering, dispatch domains |
//! | [`offload_lang`] | the Offload/Mini compiler + VM (outer pointers, duplication, word addressing) |
//! | [`gamekit`] | the game-workload substrate (entities, components, collision, AI, frames) |
//! | [`simfarm`] | the multicore fleet: worker pool running many deterministic worlds |
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! experiment index, and `EXPERIMENTS.md` for paper-vs-measured results.
//! The `bench` crate regenerates every table with
//! `cargo run -p bench --bin paper_tables`.
//!
//! # Quickstart
//!
//! ```
//! use offload_repro::offload_rt::prelude::*;
//!
//! # fn main() -> Result<(), SimError> {
//! let mut machine = Machine::new(MachineConfig::default())?;
//! let data = machine.alloc_main_slice::<f32>(1024)?;
//! machine.main_mut().write_pod_slice(data, &vec![1.0f32; 1024])?;
//!
//! // An offload block: runs on an accelerator, local store + DMA.
//! let handle = machine.offload(0).spawn(|ctx| -> Result<f32, SimError> {
//!     let array = ArrayAccessor::<f32>::fetch(ctx, data, 1024)?;
//!     let mut sum = 0.0;
//!     for i in 0..array.len() {
//!         sum += array.get(ctx, i)?;
//!     }
//!     Ok(sum)
//! })?;
//! machine.host_compute(10_000); // host works in parallel
//! let sum = machine.join(handle)?;
//! assert_eq!(sum, 1024.0);
//! # Ok(())
//! # }
//! ```

pub use dma;
pub use gamekit;
pub use memspace;
pub use offload_lang;
pub use offload_rt;
pub use simcell;
pub use simfarm;
pub use softcache;
